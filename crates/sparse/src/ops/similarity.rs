//! The binary row-similarity product `S = Ā · Āᵀ`.
//!
//! With `Ā` the 0/1 pattern of `A`, entry `S[i][j]` counts the column
//! coordinates rows `i` and `j` share — exactly the similarity measure
//! Algorithm 4 (lines 11–12) of the paper builds before the Laplacian.
//! The product is computed row-wise against the CSC view of `A` (which *is*
//! `Āᵀ` in CSR layout), costing `O(Σ_j d_j²)` where `d_j` is the number of
//! nonzeros in column `j` (Table 2).

use crate::csc::CscMatrix;
use crate::csr::CsrMatrix;

/// Computes the similarity matrix `S = pattern(A) · pattern(A)ᵀ` in CSR form.
///
/// `S` is symmetric, has `nrows x nrows` shape, and its diagonal holds each
/// row's nonzero count. The result contains no explicit zeros.
///
/// # Example
///
/// ```
/// use bootes_sparse::{CsrMatrix, ops::similarity_matrix};
///
/// # fn main() -> Result<(), bootes_sparse::SparseError> {
/// // rows 0 and 1 share column 1; row 2 shares nothing.
/// let a = CsrMatrix::try_new(
///     3, 3,
///     vec![0, 2, 3, 4],
///     vec![0, 1, 1, 2],
///     vec![9.0, 8.0, 7.0, 6.0],
/// )?;
/// let s = similarity_matrix(&a);
/// assert_eq!(s.get(0, 1), 1.0);
/// assert_eq!(s.get(0, 0), 2.0);
/// assert_eq!(s.get(0, 2), 0.0);
/// # Ok(())
/// # }
/// ```
pub fn similarity_matrix(a: &CsrMatrix) -> CsrMatrix {
    similarity_matrix_csc(a, &a.to_csc())
}

/// [`similarity_matrix`] over an explicit number of worker threads (see
/// [`par_similarity_matrix_csc`]).
pub fn par_similarity_matrix(a: &CsrMatrix, threads: usize) -> CsrMatrix {
    par_similarity_matrix_csc(a, &a.to_csc(), threads)
}

/// Like [`similarity_matrix`] but reuses a precomputed CSC view of `a`,
/// avoiding a second transposition when the caller already has one.
pub fn similarity_matrix_csc(a: &CsrMatrix, a_csc: &CscMatrix) -> CsrMatrix {
    let threads = if a.nnz() < 1 << 13 {
        1
    } else {
        bootes_par::threads()
    };
    par_similarity_matrix_csc(a, a_csc, threads)
}

/// [`similarity_matrix_csc`] over an explicit number of worker threads.
///
/// Rows of `S` are independent, so they are computed in contiguous chunks
/// (weighted by each row's column-degree work) and stitched in chunk order —
/// bit-identical to the serial kernel for every thread count.
pub fn par_similarity_matrix_csc(a: &CsrMatrix, a_csc: &CscMatrix, threads: usize) -> CsrMatrix {
    debug_assert_eq!(a.shape(), a_csc.shape(), "csc view shape mismatch");
    let _span = bootes_obs::span!("similarity.rows");
    let n = a.nrows();
    let row_work = |i: usize| -> u64 { a.row(i).0.iter().map(|&k| a_csc.col_nnz(k) as u64).sum() };
    let ranges = bootes_par::partition_weighted(n, bootes_par::chunk_count(threads), row_work);
    let chunks = bootes_par::map_ranges_in("similarity.rows", threads, &ranges, |_, rows| {
        similarity_rows(a, a_csc, rows)
    });

    let nnz: usize = chunks.iter().map(|c| c.1.len()).sum();
    if bootes_obs::enabled() {
        // One integer accumulate per (row-nonzero × column-fiber) pair; the
        // traffic model charges pattern reads (8-byte indices on both sides)
        // and one 16-byte write per output entry.
        let ops: u64 = (0..n).map(row_work).sum();
        bootes_obs::counter_add("kernel.flops{kernel=similarity.rows}", ops);
        bootes_obs::counter_add(
            "kernel.bytes{kernel=similarity.rows}",
            8 * (a.nnz() as u64 + ops) + 16 * nnz as u64,
        );
    }
    let mut indptr = Vec::with_capacity(n + 1);
    let mut indices: Vec<usize> = Vec::with_capacity(nnz);
    let mut values: Vec<f64> = Vec::with_capacity(nnz);
    indptr.push(0);
    for (row_lens, chunk_indices, chunk_values) in chunks {
        for len in row_lens {
            indptr.push(indptr.last().expect("nonempty indptr") + len);
        }
        indices.extend_from_slice(&chunk_indices);
        values.extend_from_slice(&chunk_values);
    }
    CsrMatrix::from_parts_unchecked(n, n, indptr, indices, values)
}

/// Serial similarity kernel over one contiguous row block, accumulating
/// into the calling worker's reusable thread-local `u32` scratch (zeroed
/// once per worker, touched-entries-only reset per row); returns per-row
/// lengths plus the block's concatenated indices and values.
#[allow(clippy::type_complexity)]
fn similarity_rows(
    a: &CsrMatrix,
    a_csc: &CscMatrix,
    rows: std::ops::Range<usize>,
) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let n = a.nrows();
    crate::scratch::with_dense_u32(n, |acc, touched| {
        let mut row_lens = Vec::with_capacity(rows.len());
        let mut indices: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();

        for i in rows.clone() {
            let row_start = indices.len();
            let (cols, _) = a.row(i);
            for &k in cols {
                // Row i of S accumulates 1 for every row that also has column k.
                let (srows, _) = a_csc.col(k);
                for &j in srows {
                    if acc[j] == 0 {
                        touched.push(j);
                    }
                    acc[j] += 1;
                }
            }
            touched.sort_unstable();
            for &j in touched.iter() {
                indices.push(j);
                values.push(acc[j] as f64);
                acc[j] = 0;
            }
            touched.clear();
            row_lens.push(indices.len() - row_start);
        }
        (row_lens, indices, values)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::spgemm::spgemm;

    fn sample() -> CsrMatrix {
        CsrMatrix::try_new(
            4,
            5,
            vec![0, 3, 5, 7, 8],
            vec![0, 2, 4, 0, 2, 1, 3, 4],
            vec![5.0, -1.0, 2.0, 3.0, 3.0, 1.0, 1.0, 9.0],
        )
        .unwrap()
    }

    #[test]
    fn matches_explicit_binary_spgemm() {
        let a = sample();
        let s = similarity_matrix(&a);
        let bin = a.to_binary();
        let reference = spgemm(&bin, &bin.transpose()).unwrap();
        assert_eq!(s, reference);
    }

    #[test]
    fn diagonal_is_row_nnz() {
        let a = sample();
        let s = similarity_matrix(&a);
        for i in 0..a.nrows() {
            assert_eq!(s.get(i, i), a.row_nnz(i) as f64);
        }
    }

    #[test]
    fn symmetric() {
        let a = sample();
        let s = similarity_matrix(&a);
        for i in 0..s.nrows() {
            for j in 0..s.ncols() {
                assert_eq!(s.get(i, j), s.get(j, i));
            }
        }
    }

    #[test]
    fn values_ignore_magnitudes() {
        // Same pattern with different values must give the same similarity.
        let a = sample();
        let mut b = a.clone();
        for v in b.values_mut() {
            *v *= 100.0;
        }
        assert_eq!(similarity_matrix(&a), similarity_matrix(&b));
    }

    #[test]
    fn disjoint_rows_have_zero_similarity() {
        let a = CsrMatrix::try_new(2, 4, vec![0, 2, 4], vec![0, 1, 2, 3], vec![1.0; 4]).unwrap();
        let s = similarity_matrix(&a);
        assert_eq!(s.get(0, 1), 0.0);
        assert_eq!(s.nnz(), 2); // just the diagonal
    }

    #[test]
    fn empty_matrix() {
        let a = CsrMatrix::zeros(3, 3);
        let s = similarity_matrix(&a);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.shape(), (3, 3));
    }

    #[test]
    fn par_matches_serial_exactly() {
        let a = sample();
        let serial = par_similarity_matrix(&a, 1);
        assert_eq!(similarity_matrix(&a), serial);
        for threads in [2usize, 3, 7, 64] {
            assert_eq!(par_similarity_matrix(&a, threads), serial);
        }
    }
}
