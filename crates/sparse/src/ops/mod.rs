//! Sparse kernels: SpGEMM dataflows, transposition, similarity products.

pub mod block;
pub mod elementwise;
pub mod similarity;
pub mod spgemm;
pub mod transpose;

pub use block::{block_spgemm, BlockSparseMatrix};
pub use elementwise::{add_scaled, frobenius_norm, scale, spmm};
pub use similarity::{
    par_similarity_matrix, par_similarity_matrix_csc, similarity_matrix, similarity_matrix_csc,
};
pub use spgemm::{
    dataflow_costs, par_spgemm, par_spgemm_adaptive, par_spgemm_hash, set_spgemm_dataflow, spgemm,
    spgemm_adaptive, spgemm_dataflow, spgemm_flops, spgemm_hash, DataflowCost, SpgemmDataflow,
};
