//! Deterministic content fingerprints of sparse matrices.
//!
//! The preprocessing artifact cache (`bootes-cache`) keys every stored
//! artifact on the *content* of the input matrix, not on its provenance: the
//! same matrix loaded from two different files, or rebuilt from a COO
//! triplet stream, must map to the same cache entry. [`MatrixFingerprint`]
//! provides that key as a pair of 64-bit FNV-1a hashes:
//!
//! - the **pattern hash** covers the shape (`nrows`, `ncols`) plus the full
//!   `indptr` and `indices` arrays — everything that defines the sparsity
//!   pattern. Pattern-only consumers (the spectral reorderer works on the
//!   *binary* similarity graph, the structural feature extractor counts
//!   nonzeros) share entries across matrices that differ only in values;
//! - the **value hash** additionally covers the `values` array bit-exactly
//!   (`f64::to_bits`), for consumers whose output depends on the numbers.
//!
//! Every word is folded in through its little-endian byte encoding
//! (`u64::to_le_bytes`), so the fingerprint is a pure function of the
//! logical matrix — stable across platforms of either endianness, across
//! serialization round-trips, and across process runs (FNV is unkeyed; no
//! per-process hash seeding is involved).

use crate::csr::CsrMatrix;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher over little-endian words.
///
/// Deliberately *not* `std::hash::Hasher`: the std `Hasher` contract allows
/// platform- and release-dependent output, while cache keys must be stable
/// enough to survive on disk between runs.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// Starts a fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a::default()
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Folds one `u64` in little-endian byte order.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write_bytes(&v.to_le_bytes())
    }

    /// Folds one `usize` widened to `u64` (so 32- and 64-bit targets agree).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Folds one `f64` through its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) -> &mut Self {
        self.write_u64(v.to_bits())
    }

    /// Folds a string's UTF-8 bytes, length-prefixed so concatenations of
    /// different splits cannot collide.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes())
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Content fingerprint of a [`CsrMatrix`]: shape, nonzero count, and the
/// pattern/value hash pair described at module level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatrixFingerprint {
    /// Number of rows of the fingerprinted matrix.
    pub nrows: usize,
    /// Number of columns of the fingerprinted matrix.
    pub ncols: usize,
    /// Number of stored nonzeros.
    pub nnz: usize,
    /// Hash of shape + `indptr` + `indices` (the sparsity pattern).
    pub pattern: u64,
    /// Hash of the pattern *and* the value array (bit-exact).
    pub values: u64,
}

impl MatrixFingerprint {
    /// Computes the fingerprint of `a` in one pass over its arrays.
    pub fn of(a: &CsrMatrix) -> Self {
        let mut h = Fnv1a::new();
        h.write_usize(a.nrows()).write_usize(a.ncols());
        for r in 0..a.nrows() {
            // Hash row lengths rather than raw indptr so the fingerprint is
            // a function of the logical pattern, not the prefix-sum encoding.
            let (cols, _) = a.row(r);
            h.write_usize(cols.len());
            for &c in cols {
                h.write_usize(c);
            }
        }
        let pattern = h.finish();
        for r in 0..a.nrows() {
            let (_, vals) = a.row(r);
            for &v in vals {
                h.write_f64(v);
            }
        }
        MatrixFingerprint {
            nrows: a.nrows(),
            ncols: a.ncols(),
            nnz: a.nnz(),
            pattern,
            values: h.finish(),
        }
    }
}

impl CsrMatrix {
    /// Content fingerprint used by the preprocessing artifact cache; see
    /// [`MatrixFingerprint`].
    pub fn fingerprint(&self) -> MatrixFingerprint {
        MatrixFingerprint::of(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        CsrMatrix::try_new(
            3,
            4,
            vec![0, 2, 2, 4],
            vec![0, 3, 1, 2],
            vec![1.0, -2.5, 0.5, 4.0],
        )
        .unwrap()
    }

    #[test]
    fn fingerprint_is_deterministic() {
        assert_eq!(sample().fingerprint(), sample().fingerprint());
    }

    #[test]
    fn known_answer_locks_the_byte_scheme() {
        // Golden values: any change to the hashing scheme (byte order, word
        // widths, field order) invalidates every on-disk cache entry and must
        // bump the cache format version. Regenerate deliberately if so.
        let fp = sample().fingerprint();
        assert_eq!(fp.pattern, 0xafe0e507f261a742, "{:#x}", fp.pattern);
        assert_eq!(fp.values, 0x9340c84a47e8dcfe, "{:#x}", fp.values);
    }

    #[test]
    fn values_do_not_touch_the_pattern_hash() {
        let a = sample();
        let mut coo = CooMatrix::new(3, 4);
        for (r, c, v) in a.iter() {
            coo.push(r, c, v * 3.0 + 1.0).unwrap();
        }
        let b = coo.to_csr();
        assert_eq!(a.fingerprint().pattern, b.fingerprint().pattern);
        assert_ne!(a.fingerprint().values, b.fingerprint().values);
    }

    #[test]
    fn pattern_changes_move_both_hashes() {
        let a = sample();
        let b = CsrMatrix::try_new(
            3,
            4,
            vec![0, 2, 2, 4],
            vec![0, 3, 1, 3], // one column index moved
            vec![1.0, -2.5, 0.5, 4.0],
        )
        .unwrap();
        assert_ne!(a.fingerprint().pattern, b.fingerprint().pattern);
        assert_ne!(a.fingerprint().values, b.fingerprint().values);
    }

    #[test]
    fn shape_is_part_of_the_pattern() {
        // Same arrays, one extra (empty) trailing row / wider column space.
        let a = CsrMatrix::try_new(2, 2, vec![0, 1, 1], vec![0], vec![1.0]).unwrap();
        let b = CsrMatrix::try_new(3, 2, vec![0, 1, 1, 1], vec![0], vec![1.0]).unwrap();
        let c = CsrMatrix::try_new(2, 3, vec![0, 1, 1], vec![0], vec![1.0]).unwrap();
        assert_ne!(a.fingerprint().pattern, b.fingerprint().pattern);
        assert_ne!(a.fingerprint().pattern, c.fingerprint().pattern);
    }

    #[test]
    fn value_bit_patterns_matter() {
        let a = CsrMatrix::try_new(1, 1, vec![0, 1], vec![0], vec![0.0]).unwrap();
        let b = CsrMatrix::try_new(1, 1, vec![0, 1], vec![0], vec![-0.0]).unwrap();
        assert_eq!(a.fingerprint().pattern, b.fingerprint().pattern);
        assert_ne!(a.fingerprint().values, b.fingerprint().values);
    }

    #[test]
    fn hasher_helpers_compose() {
        let mut a = Fnv1a::new();
        a.write_str("ab").write_u64(7);
        let mut b = Fnv1a::new();
        b.write_str("ab").write_u64(7);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fnv1a::new();
        c.write_str("a").write_str("b7");
        assert_ne!(a.finish(), c.finish(), "length prefix must separate splits");
    }
}
