//! Validated row permutations.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A permutation of `0..n`, stored in the paper's convention: `perm[new] = old`.
///
/// Every reordering algorithm in the workspace produces a `Permutation` `P`
/// such that row `i` of the reordered matrix is row `P[i]` of the original
/// (Algorithm 1/2/3/4 all emit this "array of the final row permutation").
///
/// # Example
///
/// ```
/// use bootes_sparse::{CsrMatrix, Permutation};
///
/// # fn main() -> Result<(), bootes_sparse::SparseError> {
/// let a = CsrMatrix::try_new(3, 1, vec![0, 1, 2, 3], vec![0, 0, 0], vec![1.0, 2.0, 3.0])?;
/// let p = Permutation::try_new(vec![2, 0, 1])?;
/// let b = p.apply_rows(&a)?;
/// assert_eq!(b.get(0, 0), 3.0); // new row 0 is old row 2
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<usize>,
}

impl Permutation {
    /// Creates the identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        Permutation {
            new_to_old: (0..n).collect(),
        }
    }

    /// Builds a permutation from a `new -> old` index array, validating that
    /// it is a bijection on `0..n`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if any index is out of
    /// range or repeated.
    pub fn try_new(new_to_old: Vec<usize>) -> Result<Self, SparseError> {
        let n = new_to_old.len();
        let mut seen = vec![false; n];
        for &old in &new_to_old {
            if old >= n {
                return Err(SparseError::InvalidPermutation(format!(
                    "index {old} out of range for length {n}"
                )));
            }
            if seen[old] {
                return Err(SparseError::InvalidPermutation(format!(
                    "index {old} appears more than once"
                )));
            }
            seen[old] = true;
        }
        Ok(Permutation { new_to_old })
    }

    /// Length of the permuted domain.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// The `new -> old` mapping as a slice.
    pub fn as_slice(&self) -> &[usize] {
        &self.new_to_old
    }

    /// The old row placed at new position `new`.
    ///
    /// # Panics
    ///
    /// Panics if `new >= len()`.
    pub fn old_index(&self, new: usize) -> usize {
        self.new_to_old[new]
    }

    /// Returns the inverse permutation (`old -> new` becomes `new -> old`).
    ///
    /// Applying the inverse to a reordered matrix restores the original row
    /// order — the "post-processing" step the paper counts in preprocessing
    /// time (§5.4).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.new_to_old.len()];
        for (new, &old) in self.new_to_old.iter().enumerate() {
            inv[old] = new;
        }
        Permutation { new_to_old: inv }
    }

    /// Composes `self` after `other`: the result maps `new` through `self`
    /// then `other`, i.e. `result[i] = other[self[i]]`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if lengths differ.
    pub fn compose(&self, other: &Permutation) -> Result<Permutation, SparseError> {
        if self.len() != other.len() {
            return Err(SparseError::InvalidPermutation(format!(
                "cannot compose permutations of lengths {} and {}",
                self.len(),
                other.len()
            )));
        }
        Ok(Permutation {
            new_to_old: self
                .new_to_old
                .iter()
                .map(|&mid| other.new_to_old[mid])
                .collect(),
        })
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.new_to_old.iter().enumerate().all(|(i, &o)| i == o)
    }

    /// Applies the permutation to the rows of a CSR matrix: row `i` of the
    /// result is row `self[i]` of `a`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] if `a.nrows() != len()`.
    pub fn apply_rows(&self, a: &CsrMatrix) -> Result<CsrMatrix, SparseError> {
        // Failpoint-only site (no budget tick): applying an already-computed
        // permutation must succeed even after the preprocessing budget ran
        // out, or the fallback chain's output would be unusable.
        bootes_guard::fail_point("sparse.permute")?;
        if a.nrows() != self.len() {
            return Err(SparseError::DimensionMismatch {
                left: (self.len(), self.len()),
                right: a.shape(),
            });
        }
        let mut indptr = Vec::with_capacity(a.nrows() + 1);
        let mut indices = Vec::with_capacity(a.nnz());
        let mut values = Vec::with_capacity(a.nnz());
        indptr.push(0);
        for &old in &self.new_to_old {
            let (cols, vals) = a.row(old);
            indices.extend_from_slice(cols);
            values.extend_from_slice(vals);
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_parts_unchecked(
            a.nrows(),
            a.ncols(),
            indptr,
            indices,
            values,
        ))
    }

    /// Applies the permutation to a slice, returning `out[i] = xs[self[i]]`.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() != len()`.
    pub fn apply_slice<T: Clone>(&self, xs: &[T]) -> Vec<T> {
        assert_eq!(xs.len(), self.len(), "slice length mismatch");
        self.new_to_old.iter().map(|&o| xs[o].clone()).collect()
    }
}

impl From<Permutation> for Vec<usize> {
    fn from(p: Permutation) -> Vec<usize> {
        p.new_to_old
    }
}

// Serialized as the bare `new -> old` index array (not a struct wrapper):
// the JSON form is exactly what the paper calls "the array of the final row
// permutation", and deserialization re-validates bijectivity through
// `try_new` so a hand-edited or corrupted file cannot smuggle in an invalid
// permutation.
impl serde::Serialize for Permutation {
    fn serialize(&self) -> serde::Value {
        self.new_to_old.serialize()
    }
}

impl serde::Deserialize for Permutation {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let raw: Vec<usize> = serde::Deserialize::deserialize(v)?;
        Permutation::try_new(raw)
            .map_err(|e| serde::Error::custom(format!("invalid permutation: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_roundtrips_and_validates() {
        let p = Permutation::try_new(vec![2, 0, 1]).unwrap();
        let v = serde::Serialize::serialize(&p);
        let back: Permutation = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(p, back);
        // A non-bijective array must be rejected at deserialization time.
        let bad = serde::Serialize::serialize(&vec![0usize, 0, 1]);
        assert!(<Permutation as serde::Deserialize>::deserialize(&bad).is_err());
    }

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.len(), 5);
        assert_eq!(p.inverse(), p);
    }

    #[test]
    fn rejects_duplicate() {
        assert!(Permutation::try_new(vec![0, 0, 1]).is_err());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Permutation::try_new(vec![0, 3]).is_err());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::try_new(vec![2, 0, 3, 1]).unwrap();
        let inv = p.inverse();
        assert!(p.compose(&inv).unwrap().is_identity() || inv.compose(&p).unwrap().is_identity());
        // Both directions must be the identity for a true inverse.
        assert!(p.compose(&inv).unwrap().is_identity());
        assert!(inv.compose(&p).unwrap().is_identity());
    }

    #[test]
    fn apply_rows_then_inverse_restores() {
        let a =
            CsrMatrix::try_new(3, 2, vec![0, 1, 2, 3], vec![0, 1, 0], vec![1.0, 2.0, 3.0]).unwrap();
        let p = Permutation::try_new(vec![1, 2, 0]).unwrap();
        let b = p.apply_rows(&a).unwrap();
        assert_eq!(b.get(0, 1), 2.0);
        let restored = p.inverse().apply_rows(&b).unwrap();
        assert_eq!(restored, a);
    }

    #[test]
    fn apply_rows_rejects_wrong_size() {
        let a = CsrMatrix::zeros(3, 3);
        let p = Permutation::identity(2);
        assert!(p.apply_rows(&a).is_err());
    }

    #[test]
    fn apply_slice_permutes() {
        let p = Permutation::try_new(vec![2, 0, 1]).unwrap();
        assert_eq!(p.apply_slice(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
    }

    #[test]
    fn compose_rejects_length_mismatch() {
        let p = Permutation::identity(2);
        let q = Permutation::identity(3);
        assert!(p.compose(&q).is_err());
    }

    #[test]
    fn empty_permutation() {
        let p = Permutation::identity(0);
        assert!(p.is_empty());
        assert!(p.is_identity());
    }
}
