//! Minimal dense matrix used for reference computations and tests.

use std::ops::{Index, IndexMut};

/// A row-major dense matrix of `f64`.
///
/// Used as the ground-truth reference for sparse kernels (tests compare
/// SpGEMM output against [`DenseMatrix::matmul`]) and for small projected
/// matrices inside the eigensolvers.
///
/// # Example
///
/// ```
/// use bootes_sparse::DenseMatrix;
///
/// let mut a = DenseMatrix::zeros(2, 2);
/// a[(0, 0)] = 1.0;
/// a[(1, 1)] = 2.0;
/// let b = a.matmul(&a).unwrap();
/// assert_eq!(b[(1, 1)], 4.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_rows(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "dense data length mismatch");
        DenseMatrix { nrows, ncols, data }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Dense matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SparseError::DimensionMismatch`] if inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix, crate::SparseError> {
        if self.ncols != other.nrows {
            return Err(crate::SparseError::DimensionMismatch {
                left: (self.nrows, self.ncols),
                right: (other.nrows, other.ncols),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Maximum absolute entry-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "shape mismatch in max_abs_diff"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.ncols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let i = DenseMatrix::identity(3);
        let mut a = DenseMatrix::zeros(3, 3);
        a[(0, 2)] = 5.0;
        a[(2, 1)] = -1.0;
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn matmul_rectangular() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(0, 1)], 64.0);
        assert_eq!(c[(1, 0)], 139.0);
        assert_eq!(c[(1, 1)], 154.0);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn transpose_involutive() {
        let a = DenseMatrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn max_abs_diff_zero_for_equal() {
        let a = DenseMatrix::identity(4);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
