//! Sparsity-pattern statistics.
//!
//! These are the raw measurements behind the feature vector of the paper's
//! decision tree (§3.2): global sparsity, per-row and per-column nonzero
//! variance, and row-intersection statistics.

use crate::csr::CsrMatrix;

/// Per-row nonzero counts.
pub fn row_nnz_counts(a: &CsrMatrix) -> Vec<usize> {
    (0..a.nrows()).map(|r| a.row_nnz(r)).collect()
}

/// Per-column nonzero counts (computed in one pass; no CSC needed).
pub fn col_nnz_counts(a: &CsrMatrix) -> Vec<usize> {
    let mut counts = vec![0usize; a.ncols()];
    for &c in a.indices() {
        counts[c] += 1;
    }
    counts
}

/// Fraction of stored entries: `nnz / (nrows * ncols)`. Zero for empty shapes.
pub fn density(a: &CsrMatrix) -> f64 {
    let cells = a.nrows() as f64 * a.ncols() as f64;
    if cells == 0.0 {
        0.0
    } else {
        a.nnz() as f64 / cells
    }
}

/// Mean of a slice of counts. Zero for an empty slice.
pub fn mean(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<usize>() as f64 / xs.len() as f64
    }
}

/// Population variance of a slice of counts. Zero for an empty slice.
pub fn variance(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Number of shared column coordinates between rows `i` and `j`
/// (merge-based intersection of the two sorted index slices).
///
/// # Panics
///
/// Panics if `i` or `j` is out of range.
pub fn row_intersection(a: &CsrMatrix, i: usize, j: usize) -> usize {
    let (ci, _) = a.row(i);
    let (cj, _) = a.row(j);
    let mut p = 0;
    let mut q = 0;
    let mut count = 0;
    while p < ci.len() && q < cj.len() {
        match ci[p].cmp(&cj[q]) {
            std::cmp::Ordering::Less => p += 1,
            std::cmp::Ordering::Greater => q += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                p += 1;
                q += 1;
            }
        }
    }
    count
}

/// Jaccard similarity of the column supports of rows `i` and `j`:
/// `|cols(i) ∩ cols(j)| / |cols(i) ∪ cols(j)|`. Returns `0.0` when both rows
/// are empty. This is the similarity score used by the Hier baseline (§2.2.3).
///
/// # Panics
///
/// Panics if `i` or `j` is out of range.
pub fn jaccard(a: &CsrMatrix, i: usize, j: usize) -> f64 {
    let inter = row_intersection(a, i, j);
    let union = a.row_nnz(i) + a.row_nnz(j) - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Average and variance of the intersection size between *adjacent* rows
/// `(i, i+1)` — the structural-overlap "fingerprint" features of §3.2.
/// Returns `(0.0, 0.0)` for matrices with fewer than two rows.
pub fn adjacent_intersection_stats(a: &CsrMatrix) -> (f64, f64) {
    if a.nrows() < 2 {
        return (0.0, 0.0);
    }
    let counts: Vec<usize> = (0..a.nrows() - 1)
        .map(|i| row_intersection(a, i, i + 1))
        .collect();
    (mean(&counts), variance(&counts))
}

/// Pattern bandwidth: the maximum of `|i - j|` over stored entries. Zero for
/// empty matrices.
pub fn bandwidth(a: &CsrMatrix) -> usize {
    let mut bw = 0usize;
    for (r, c, _) in a.iter() {
        bw = bw.max(r.abs_diff(c));
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 1 0 0]
        // [0 1 1 0]
        // [0 0 0 1]
        CsrMatrix::try_new(3, 4, vec![0, 2, 4, 5], vec![0, 1, 1, 2, 3], vec![1.0; 5]).unwrap()
    }

    #[test]
    fn counts() {
        let a = sample();
        assert_eq!(row_nnz_counts(&a), vec![2, 2, 1]);
        assert_eq!(col_nnz_counts(&a), vec![1, 2, 1, 1]);
    }

    #[test]
    fn density_value() {
        let a = sample();
        assert!((density(&a) - 5.0 / 12.0).abs() < 1e-15);
        assert_eq!(density(&CsrMatrix::zeros(0, 0)), 0.0);
    }

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[2, 4]), 3.0);
        assert_eq!(variance(&[2, 4]), 1.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(variance(&[5, 5, 5]), 0.0);
    }

    #[test]
    fn intersections() {
        let a = sample();
        assert_eq!(row_intersection(&a, 0, 1), 1); // share column 1
        assert_eq!(row_intersection(&a, 0, 2), 0);
        assert_eq!(row_intersection(&a, 1, 1), 2);
    }

    #[test]
    fn jaccard_values() {
        let a = sample();
        assert!((jaccard(&a, 0, 1) - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(jaccard(&a, 0, 2), 0.0);
        assert_eq!(jaccard(&a, 1, 1), 1.0);
        let empty = CsrMatrix::zeros(2, 2);
        assert_eq!(jaccard(&empty, 0, 1), 0.0);
    }

    #[test]
    fn adjacent_stats() {
        let a = sample();
        let (avg, var) = adjacent_intersection_stats(&a);
        // intersections: (0,1)=1, (1,2)=0 -> mean 0.5, var 0.25
        assert!((avg - 0.5).abs() < 1e-15);
        assert!((var - 0.25).abs() < 1e-15);
        assert_eq!(
            adjacent_intersection_stats(&CsrMatrix::zeros(1, 1)),
            (0.0, 0.0)
        );
    }

    #[test]
    fn bandwidth_value() {
        let a = sample();
        assert_eq!(bandwidth(&a), 1);
        assert_eq!(bandwidth(&CsrMatrix::zeros(5, 5)), 0);
        let wide = CsrMatrix::try_new(2, 10, vec![0, 1, 1], vec![9], vec![1.0]).unwrap();
        assert_eq!(bandwidth(&wide), 9);
    }
}
