//! The row-wise multi-PE schedule shared by the accelerator engine and the
//! scheduled reuse-distance analysis.
//!
//! A row-wise SpGEMM accelerator hands rows of `A` to processing elements in
//! order: **idle PEs take the next row, and each simulation step advances
//! every busy PE by one nonzero of its current row**. Crucially, a PE that
//! drains its row mid-sweep is idle *within that same step* and immediately
//! picks up the next unassigned row (emitting that row's first access in the
//! step where the PE would otherwise stall). An earlier version of the
//! analysis let such a PE idle for one step, so its emitted `B`-row stream
//! diverged from the engine's schedule; both now consume this one generator.

use crate::csr::CsrMatrix;

/// One event of the row-wise PE schedule, in emission order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeEvent {
    /// PE `pe` picked up row `row` of `A` (row-dispatch overhead).
    Dispatch {
        /// Processing element index, in `0..num_pes`.
        pe: usize,
        /// The `A` row assigned to the PE.
        row: usize,
    },
    /// PE `pe`, working on `A` row `row`, consumed nonzero `A[row, col]` —
    /// i.e. fetched row `col` of `B`.
    Access {
        /// Processing element index, in `0..num_pes`.
        pe: usize,
        /// The `A` row the PE is working on.
        row: usize,
        /// Column of the consumed nonzero = the fetched `B` row.
        col: usize,
    },
}

/// Drives the row-wise PE schedule for left operand `a` over `num_pes`
/// processing elements, invoking `f` for every event in order.
///
/// Within a step PEs are visited in index order; an idle PE (fresh, or one
/// that just drained its row) is refilled — possibly several times over for
/// empty rows — before the step moves on to the next PE.
pub fn for_each_scheduled_event(a: &CsrMatrix, num_pes: usize, mut f: impl FnMut(PeEvent)) {
    let num_pes = num_pes.max(1);
    let nrows = a.nrows();
    // (row, position within the row's nonzeros) per PE.
    let mut active: Vec<Option<(usize, usize)>> = vec![None; num_pes];
    let mut next_row = 0usize;
    let mut remaining = nrows;
    while remaining > 0 {
        for (pe, slot) in active.iter_mut().enumerate() {
            loop {
                match *slot {
                    None => {
                        if next_row >= nrows {
                            break;
                        }
                        *slot = Some((next_row, 0));
                        f(PeEvent::Dispatch { pe, row: next_row });
                        next_row += 1;
                    }
                    Some((row, pos)) => {
                        let (cols, _) = a.row(row);
                        if pos >= cols.len() {
                            // Row drained: the PE is idle in this very step
                            // and takes the next row immediately.
                            *slot = None;
                            remaining -= 1;
                            continue;
                        }
                        f(PeEvent::Access {
                            pe,
                            row,
                            col: cols[pos],
                        });
                        *slot = Some((row, pos + 1));
                        break;
                    }
                }
            }
        }
    }
}

/// The `B`-row access stream the schedule generates: the `col` of every
/// [`PeEvent::Access`], in emission order.
pub fn scheduled_b_row_stream(a: &CsrMatrix, num_pes: usize) -> Vec<usize> {
    let mut stream = Vec::with_capacity(a.nnz());
    for_each_scheduled_event(a, num_pes, |ev| {
        if let PeEvent::Access { col, .. } = ev {
            stream.push(col);
        }
    });
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn from_rows(ncols: usize, rows: &[&[usize]]) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows.len(), ncols);
        for (r, cols) in rows.iter().enumerate() {
            for &c in *cols {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn one_pe_streams_sequentially() {
        let a = from_rows(5, &[&[0, 3], &[], &[1, 2, 4]]);
        assert_eq!(scheduled_b_row_stream(&a, 1), vec![0, 3, 1, 2, 4]);
    }

    #[test]
    fn finished_pe_takes_next_row_in_same_step() {
        // r0 = [0] (1 nnz), r1 = [1, 2] (2 nnz), r2 = [3].
        // Step 1: PE0 dispatches r0 and emits 0; PE1 dispatches r1, emits 1.
        // Step 2: PE0 drained r0 *last* step — it is idle now, so it takes
        // r2 and emits 3 in this same step; PE1 emits 2.
        let a = from_rows(4, &[&[0], &[1, 2], &[3]]);
        assert_eq!(scheduled_b_row_stream(&a, 2), vec![0, 1, 3, 2]);
    }

    #[test]
    fn empty_rows_are_skipped_within_a_step() {
        // PE0 chains through two empty rows before finding a real one.
        let a = from_rows(3, &[&[], &[], &[0], &[1, 2]]);
        let mut events = Vec::new();
        for_each_scheduled_event(&a, 1, |ev| events.push(ev));
        assert_eq!(
            events,
            vec![
                PeEvent::Dispatch { pe: 0, row: 0 },
                PeEvent::Dispatch { pe: 0, row: 1 },
                PeEvent::Dispatch { pe: 0, row: 2 },
                PeEvent::Access {
                    pe: 0,
                    row: 2,
                    col: 0
                },
                PeEvent::Dispatch { pe: 0, row: 3 },
                PeEvent::Access {
                    pe: 0,
                    row: 3,
                    col: 1
                },
                PeEvent::Access {
                    pe: 0,
                    row: 3,
                    col: 2
                },
            ]
        );
    }

    #[test]
    fn lockstep_pes_interleave_columns() {
        // 3 identical rows on 3 PEs: each step emits one column from every
        // PE, so accesses to the same B row bunch together.
        let a = from_rows(2, &[&[0, 1], &[0, 1], &[0, 1]]);
        assert_eq!(scheduled_b_row_stream(&a, 3), vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn stream_is_a_permutation_of_nonzeros() {
        let a = from_rows(6, &[&[0, 5], &[], &[2], &[1, 3, 4], &[0]]);
        for pes in [1usize, 2, 3, 8] {
            let mut stream = scheduled_b_row_stream(&a, pes);
            assert_eq!(stream.len(), a.nnz());
            stream.sort_unstable();
            assert_eq!(stream, vec![0, 0, 1, 2, 3, 4, 5]);
        }
    }

    #[test]
    fn empty_matrix_emits_nothing() {
        assert!(scheduled_b_row_stream(&CsrMatrix::zeros(0, 0), 4).is_empty());
        assert!(scheduled_b_row_stream(&CsrMatrix::zeros(5, 5), 4).is_empty());
    }
}
