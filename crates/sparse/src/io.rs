//! Matrix Market (coordinate format) reading and writing.
//!
//! The evaluation matrices in the paper come from SuiteSparse/SNAP, which are
//! distributed as Matrix Market files. This module implements the `%%MatrixMarket
//! matrix coordinate <field> <symmetry>` subset needed to load such files:
//! fields `real`, `integer` and `pattern`; symmetries `general` and
//! `symmetric`.

use std::io::{BufRead, Write};

use crate::coo::CooMatrix;
use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// Reads a sparse matrix from a Matrix Market coordinate stream.
///
/// Symmetric files are expanded to full storage (the mirrored entry is added
/// for every off-diagonal nonzero). `pattern` files store value `1.0`.
///
/// Duplicate coordinates are summed (the Matrix Market "assembled from
/// element contributions" convention, and what SciPy's reader does), and
/// non-finite values (`nan`, `inf`) are rejected: they would otherwise parse
/// successfully and silently poison every similarity/Laplacian computation
/// downstream.
///
/// # Errors
///
/// Returns [`SparseError::Parse`] for malformed headers, counts, entries or
/// non-finite values, and [`SparseError::Io`] for underlying read failures.
///
/// # Example
///
/// ```
/// use bootes_sparse::io::read_matrix_market;
///
/// # fn main() -> Result<(), bootes_sparse::SparseError> {
/// let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.5\n2 2 -1\n";
/// let m = read_matrix_market(text.as_bytes())?;
/// assert_eq!(m.get(0, 0), 3.5);
/// assert_eq!(m.get(1, 1), -1.0);
/// # Ok(())
/// # }
/// ```
pub fn read_matrix_market<R: BufRead>(mut reader: R) -> Result<CsrMatrix, SparseError> {
    // Failpoint-only site (no budget tick): loading the input is mandatory
    // work that must survive an exhausted preprocessing budget — the
    // degradation chain downstream handles the budget.
    bootes_guard::fail_point("sparse.io.read")?;
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let header = header.trim().to_ascii_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(SparseError::Parse(format!(
            "unsupported matrix market header: {header:?}"
        )));
    }
    if fields[2] != "coordinate" {
        return Err(SparseError::Parse(
            "only coordinate format is supported".to_string(),
        ));
    }
    let field = fields[3];
    if !matches!(field, "real" | "integer" | "pattern") {
        return Err(SparseError::Parse(format!("unsupported field: {field}")));
    }
    let symmetry = fields[4];
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(SparseError::Parse(format!(
            "unsupported symmetry: {symmetry}"
        )));
    }

    // Skip comment lines, then read the size line.
    let mut line = String::new();
    let size_line = loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(SparseError::Parse("missing size line".to_string()));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break trimmed.to_string();
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>()
                .map_err(|e| SparseError::Parse(format!("bad size entry {t:?}: {e}")))
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::Parse(format!(
            "size line must have 3 entries, got {size_line:?}"
        )));
    }
    let (nrows, ncols, nnz) = (dims[0], dims[1], dims[2]);

    let mut coo = CooMatrix::with_capacity(nrows, ncols, nnz);
    let mut seen = 0usize;
    while seen < nnz {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(SparseError::Parse(format!(
                "expected {nnz} entries, found {seen}"
            )));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut toks = trimmed.split_whitespace();
        let r: usize = toks
            .next()
            .ok_or_else(|| SparseError::Parse("missing row index".to_string()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad row index: {e}")))?;
        let c: usize = toks
            .next()
            .ok_or_else(|| SparseError::Parse("missing col index".to_string()))?
            .parse()
            .map_err(|e| SparseError::Parse(format!("bad col index: {e}")))?;
        if r == 0 || c == 0 {
            return Err(SparseError::Parse(
                "matrix market indices are 1-based; found 0".to_string(),
            ));
        }
        let v: f64 = match field {
            "pattern" => 1.0,
            _ => toks
                .next()
                .ok_or_else(|| SparseError::Parse("missing value".to_string()))?
                .parse()
                .map_err(|e| SparseError::Parse(format!("bad value: {e}")))?,
        };
        if !v.is_finite() {
            return Err(SparseError::Parse(format!(
                "non-finite value {v} at entry ({r}, {c})"
            )));
        }
        coo.push(r - 1, c - 1, v)?;
        if symmetry == "symmetric" && r != c {
            coo.push(c - 1, r - 1, v)?;
        }
        seen += 1;
    }
    Ok(coo.to_csr())
}

/// Writes a matrix in Matrix Market `coordinate real general` format.
///
/// # Errors
///
/// Returns [`SparseError::Io`] if writing fails.
pub fn write_matrix_market<W: Write>(mut writer: W, m: &CsrMatrix) -> Result<(), SparseError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(writer, "{} {} {}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general() {
        let a = CsrMatrix::try_new(3, 2, vec![0, 1, 1, 3], vec![1, 0, 1], vec![2.5, -1.0, 4.0])
            .unwrap();
        let mut buf = Vec::new();
        write_matrix_market(&mut buf, &a).unwrap();
        let b = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn symmetric_files_are_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(2, 2), 1.0);
        assert_eq!(m.nnz(), 3);
    }

    #[test]
    fn pattern_files_store_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 2\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 1), 1.0);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 1\n% another\n1 1 7\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), 7.0);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_matrix_market("garbage\n".as_bytes()).is_err());
        assert!(read_matrix_market(
            "%%MatrixMarket matrix array real general\n1 1\n1.0\n".as_bytes()
        )
        .is_err());
    }

    #[test]
    fn rejects_truncated_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_zero_based_indices() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_non_finite_values() {
        // "nan"/"inf" parse successfully as f64, so without the explicit
        // finiteness check they would flow straight into the CSR.
        for bad in ["nan", "NaN", "inf", "-inf", "Infinity"] {
            let text = format!("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 {bad}\n");
            let err = read_matrix_market(text.as_bytes()).unwrap_err();
            assert!(
                matches!(&err, SparseError::Parse(msg) if msg.contains("non-finite")),
                "value {bad:?} produced {err:?}"
            );
        }
    }

    #[test]
    fn sums_duplicate_coordinate_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 2\n1 1 3.5\n2 2 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), 5.5);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn duplicate_entries_that_cancel_are_dropped() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 2\n1 1 -2\n2 1 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 0), 1.0);
    }
}
