//! Coordinate-format matrix builder.

use crate::csr::CsrMatrix;
use crate::error::SparseError;

/// A sparse matrix in coordinate (triplet) format.
///
/// `CooMatrix` is the mutable builder format: entries may be pushed in any
/// order and duplicates are allowed (they are summed during conversion to
/// [`CsrMatrix`]). All generators and the Matrix Market reader produce `COO`
/// first and convert once construction is complete.
///
/// # Example
///
/// ```
/// use bootes_sparse::CooMatrix;
///
/// # fn main() -> Result<(), bootes_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 1.0)?;
/// coo.push(0, 1, 2.0)?; // duplicate: summed on conversion
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows x ncols` matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries, counting duplicates separately.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Appends an entry.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if `(row, col)` lies outside
    /// the matrix shape.
    pub fn push(&mut self, row: usize, col: usize, val: f64) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                index: (row, col),
                shape: (self.nrows, self.ncols),
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
        Ok(())
    }

    /// Iterates over `(row, col, value)` triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to CSR, summing duplicate entries and dropping exact zeros
    /// that result from cancellation. Explicitly stored zeros pushed by the
    /// caller are preserved only if they do not cancel (a summed value of
    /// exactly `0.0` is dropped).
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then per-row sort by column and merge dups.
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.nnz()];
        let mut next = counts.clone();
        for (idx, &r) in self.rows.iter().enumerate() {
            order[next[r]] = idx;
            next[r] += 1;
        }

        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        indptr.push(0);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            scratch.clear();
            for &idx in &order[counts[r]..counts[r + 1]] {
                scratch.push((self.cols[idx], self.vals[idx]));
            }
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < scratch.len() {
                let col = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == col {
                    sum += scratch[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    indices.push(col);
                    values.push(sum);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_parts_unchecked(self.nrows, self.ncols, indptr, indices, values)
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    /// Extends with triplets.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds; use [`CooMatrix::push`] for
    /// fallible insertion.
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v).expect("triplet out of bounds in extend");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_convert_sorts_rows_and_columns() {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(2, 3, 1.0).unwrap();
        coo.push(0, 1, 2.0).unwrap();
        coo.push(2, 0, 3.0).unwrap();
        coo.push(0, 0, 4.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.row(0), (&[0usize, 1][..], &[4.0, 2.0][..]));
        assert_eq!(csr.row(1), (&[][..], &[][..]));
        assert_eq!(csr.row(2), (&[0usize, 3][..], &[3.0, 1.0][..]));
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(1, 2);
        coo.push(0, 1, 1.5).unwrap();
        coo.push(0, 1, 2.5).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(0, 1), 4.0);
    }

    #[test]
    fn cancelling_duplicates_are_dropped() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, -1.0).unwrap();
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(matches!(
            coo.push(2, 0, 1.0),
            Err(SparseError::IndexOutOfBounds { .. })
        ));
        assert!(coo.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(0, 0);
        let csr = coo.to_csr();
        assert_eq!(csr.nrows(), 0);
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn extend_collects_triplets() {
        let mut coo = CooMatrix::new(2, 2);
        coo.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn iter_returns_insertion_order() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 9.0).unwrap();
        coo.push(0, 1, 8.0).unwrap();
        let got: Vec<_> = coo.iter().collect();
        assert_eq!(got, vec![(1, 0, 9.0), (0, 1, 8.0)]);
    }
}
