#![warn(missing_docs)]
//! Sparse matrix substrate for the Bootes reproduction.
//!
//! This crate provides the sparse-matrix data structures and kernels that every
//! other layer of the system is built on:
//!
//! - [`CooMatrix`]: coordinate-format builder for incremental construction,
//! - [`CsrMatrix`]: compressed sparse row, the workhorse format (the paper keeps
//!   `A`, the similarity matrix and the Laplacian in CSR throughout),
//! - [`CscMatrix`]: compressed sparse column, used for column-coordinate lookups
//!   by the Gamma and Graph reordering baselines,
//! - [`Permutation`]: validated row permutations,
//! - row-wise (Gustavson) SpGEMM kernels and the binary `A·Aᵀ` similarity
//!   product ([`ops`]),
//! - Matrix Market I/O ([`io`]) and pattern statistics ([`stats`]).
//!
//! # Example
//!
//! ```
//! use bootes_sparse::{CooMatrix, ops};
//!
//! # fn main() -> Result<(), bootes_sparse::SparseError> {
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 0, 2.0)?;
//! coo.push(1, 1, 3.0)?;
//! coo.push(2, 0, 1.0)?;
//! let a = coo.to_csr();
//! let c = ops::spgemm(&a, &a)?;
//! assert_eq!(c.get(0, 0), 4.0);
//! # Ok(())
//! # }
//! ```

pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod fingerprint;
pub mod io;
pub mod ops;
pub mod perm;
pub mod schedule;
mod scratch;
pub mod stats;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use fingerprint::{Fnv1a, MatrixFingerprint};
pub use perm::Permutation;
