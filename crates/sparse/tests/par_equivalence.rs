//! Property-based equivalence of the parallel kernels with their serial
//! counterparts: `spgemm == spgemm_hash == par_spgemm(threads ∈ {1, 2, 7})`
//! and `similarity_matrix == par_similarity_matrix`, on random CSR matrices
//! including empty rows and all-zero matrices (`0..max_nnz` triplets means
//! the empty-matrix case is generated too).

use bootes_sparse::ops::{
    par_similarity_matrix, par_spgemm, par_spgemm_hash, similarity_matrix, spgemm, spgemm_hash,
};
use bootes_sparse::{CooMatrix, CsrMatrix};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];

/// Strategy: an `r x c` matrix from `0..max_nnz` random triplets (duplicate
/// coordinates collapse in `to_csr`; zero triplet counts give all-zero
/// matrices, and unreferenced rows stay empty).
fn matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = CsrMatrix> {
    (1..max_dim, 1..max_dim).prop_flat_map(move |(r, c)| {
        proptest::collection::vec((0..r, 0..c, -4.0f64..4.0), 0..max_nnz).prop_map(move |trips| {
            let mut coo = CooMatrix::new(r, c);
            for (i, j, v) in trips {
                coo.push(i, j, v).expect("in range by construction");
            }
            coo.to_csr()
        })
    })
}

/// Strategy: a conforming (`a`, `b`) SpGEMM pair with shared inner dim.
fn spgemm_pair(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (CsrMatrix, CsrMatrix)> {
    (1..max_dim, 1..max_dim, 1..max_dim).prop_flat_map(move |(m, k, n)| {
        let left = proptest::collection::vec((0..m, 0..k, -4.0f64..4.0), 0..max_nnz).prop_map(
            move |trips| {
                let mut coo = CooMatrix::new(m, k);
                for (i, j, v) in trips {
                    coo.push(i, j, v).expect("in range by construction");
                }
                coo.to_csr()
            },
        );
        let right = proptest::collection::vec((0..k, 0..n, -4.0f64..4.0), 0..max_nnz).prop_map(
            move |trips| {
                let mut coo = CooMatrix::new(k, n);
                for (i, j, v) in trips {
                    coo.push(i, j, v).expect("in range by construction");
                }
                coo.to_csr()
            },
        );
        (left, right)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Both accumulators and every thread count produce the identical matrix.
    #[test]
    fn spgemm_serial_parallel_equivalence((a, b) in spgemm_pair(20, 120)) {
        let reference = spgemm(&a, &b).expect("conforming shapes");
        prop_assert_eq!(&spgemm_hash(&a, &b).expect("conforming shapes"), &reference);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&par_spgemm(&a, &b, threads).expect("conforming shapes"), &reference);
            prop_assert_eq!(
                &par_spgemm_hash(&a, &b, threads).expect("conforming shapes"),
                &reference
            );
        }
    }

    /// The parallel similarity product matches the serial one bit-for-bit.
    #[test]
    fn similarity_serial_parallel_equivalence(a in matrix(24, 120)) {
        let reference = similarity_matrix(&a);
        for threads in THREAD_COUNTS {
            prop_assert_eq!(&par_similarity_matrix(&a, threads), &reference);
        }
    }

    /// The parallel matvec matches the serial one bit-for-bit.
    #[test]
    fn matvec_serial_parallel_equivalence(a in matrix(24, 120)) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.7).cos()).collect();
        let mut reference = vec![0.0; a.nrows()];
        a.matvec_into(&x, &mut reference);
        for threads in THREAD_COUNTS {
            let mut y = vec![f64::NAN; a.nrows()];
            a.par_matvec_into(&x, &mut y, threads);
            prop_assert_eq!(&y, &reference);
        }
    }
}

#[test]
fn all_zero_and_empty_row_matrices() {
    // Deterministic spot checks of the degenerate shapes the strategies only
    // sometimes produce: all-zero operands and interior empty rows.
    let zero = CsrMatrix::zeros(6, 5);
    let tall = CsrMatrix::try_new(
        5,
        4,
        vec![0, 2, 2, 3, 3, 4],
        vec![0, 3, 1, 2],
        vec![1.0, -2.0, 4.0, 0.5],
    )
    .expect("valid csr");
    for threads in THREAD_COUNTS {
        assert_eq!(
            par_spgemm(&zero, &CsrMatrix::zeros(5, 3), threads).unwrap(),
            CsrMatrix::zeros(6, 3)
        );
        assert_eq!(
            par_spgemm(&tall, &CsrMatrix::zeros(4, 7), threads).unwrap(),
            CsrMatrix::zeros(5, 7)
        );
        assert_eq!(
            par_similarity_matrix(&tall, threads),
            similarity_matrix(&tall)
        );
        assert_eq!(
            par_similarity_matrix(&zero, threads),
            similarity_matrix(&zero)
        );
    }
}
