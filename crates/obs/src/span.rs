//! Scoped spans: RAII guards that record wall-time into the registry and a
//! thread-local stack that gives each record its hierarchical path.

use crate::registry::{epoch, record_span, thread_tid, SpanRecord};
use std::cell::RefCell;
use std::time::{Duration, Instant};

thread_local! {
    /// Names of the spans currently open on this thread, root first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

struct ActiveSpan {
    name: &'static str,
    start: Instant,
    start_ns: u64,
}

/// RAII guard created by [`crate::span!`]. Dropping it closes the span and
/// records one timing event; when profiling is disabled the guard is inert
/// and construction did not even read the clock.
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// Opens a span named `name`. Prefer the [`crate::span!`] macro.
    pub fn enter(name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { inner: None };
        }
        let start_ns = epoch().elapsed().as_nanos() as u64;
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name));
        SpanGuard {
            inner: Some(ActiveSpan {
                name,
                start: Instant::now(),
                start_ns,
            }),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.inner.take() else {
            return;
        };
        let dur_ns = active.start.elapsed().as_nanos() as u64;
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Unwind to this span's frame even if an inner guard leaked
            // (e.g. was dropped out of order across an early return).
            while let Some(top) = stack.pop() {
                if std::ptr::eq(top, active.name) || top == active.name {
                    break;
                }
            }
            let mut path = stack.join("/");
            if !path.is_empty() {
                path.push('/');
            }
            path.push_str(active.name);
            path
        });
        record_span(SpanRecord {
            path,
            start_ns: active.start_ns,
            dur_ns,
            tid: thread_tid(),
        });
    }
}

/// Opens a scoped span; the returned guard records the elapsed wall-time
/// into the hierarchical span tree when dropped.
///
/// ```
/// let _g = bootes_obs::span!("lanczos.restart");
/// // ... work ...
/// // guard drop records the span (no-op unless profiling is enabled)
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// A scope that is **always** timed, independent of the profiling flag, and
/// additionally recorded as a span when profiling is enabled.
///
/// Components whose public results embed an elapsed time (e.g.
/// `ReorderStats::elapsed`) use this so the reported duration and the
/// profile span come from the same measurement.
pub struct TimedScope {
    start: Instant,
    _guard: SpanGuard,
}

impl TimedScope {
    /// Starts timing a scope named `name`.
    pub fn start(name: &'static str) -> TimedScope {
        TimedScope {
            // Read the clock after the guard is set up so the always-on
            // elapsed figure excludes profiling bookkeeping.
            _guard: SpanGuard::enter(name),
            start: Instant::now(),
        }
    }

    /// Wall-time since the scope started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}
