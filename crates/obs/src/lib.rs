//! Observability for the Bootes preprocessing + simulation pipeline:
//! scoped spans, a metrics registry, and profile exporters.
//!
//! Everything funnels into one process-wide registry behind a single
//! `AtomicBool` gate. While profiling is disabled (the default) every
//! instrumentation call is a relaxed atomic load and a branch — no clock
//! reads, no locks, no allocation — so instrumented hot paths stay within
//! noise of uninstrumented builds. Enable with [`set_enabled`] or the
//! `BOOTES_PROFILE=1` environment variable via [`init_from_env`] (the CLI
//! does both for `--profile`).
//!
//! # Spans
//!
//! [`span!`] opens a scope whose wall-time is recorded on drop into a
//! hierarchical timer tree (nesting follows a thread-local span stack).
//! [`TimedScope`] is the always-timed variant for components whose public
//! results embed an elapsed duration (e.g. `ReorderStats`).
//!
//! # Exporters
//!
//! [`snapshot`] captures a serializable [`Profile`] (top-level JSON keys:
//! `meta`, `spans`, `counters`, `gauges`, `histograms`);
//! [`render_table`] renders it for stderr; [`export_json`] pretty-prints
//! it; [`export_chrome_trace`] emits Chrome trace-event JSON (open in
//! `chrome://tracing` or Perfetto).
//!
//! # Metric catalog
//!
//! Span names (hierarchy shown flat; actual nesting depends on call paths):
//!
//! | span | recorded by |
//! |------|-------------|
//! | `pipeline.preprocess` | `bootes-core` — full preprocessing pass |
//! | `pipeline.decide` | `bootes-core` — model-driven label decision |
//! | `reorder.gamma` / `reorder.graph` / `reorder.hier` / `reorder.spectral` / `reorder.recursive` | each `Reorderer::reorder` implementation |
//! | `spectral.similarity` / `spectral.laplacian` / `spectral.lanczos` / `spectral.kmeans` / `spectral.order` | spectral clustering stages |
//! | `spectral.bisect` | recursive bisection levels |
//! | `lanczos.restart` | `bootes-linalg` — one thick-restart outer iteration |
//! | `lanczos.sweep` | `bootes-linalg` — one plain (non-restarted) Lanczos sweep |
//! | `lanczos.dense_fallback` | `bootes-linalg` — dense eigensolver fallback |
//! | `kmeans.run` | `bootes-linalg` — one seeded k-means attempt |
//! | `accel.simulate` | `bootes-accel` — full SpGEMM simulation |
//! | `accel.symbolic` | `bootes-accel` — symbolic output sizing |
//! | `spgemm.dense_acc` / `spgemm.hash_acc` / `spgemm.adaptive` / `spgemm.block` | `bootes-sparse` kernels |
//! | `par.worker` | `bootes-par` — one worker thread's share of a parallel kernel |
//! | `reorder.fallback` | `bootes-core` — one pass of the graceful-degradation chain |
//!
//! Parallel regions additionally record **worker-chunk events** (region,
//! worker lane, chunk index, row range, weight, wall-ns) via
//! [`record_worker_chunk`]; these appear as per-worker lanes in the Chrome
//! trace. Chunk events are gated separately behind [`chunk_timeline`]
//! (enabled by the CLI for `--trace-out`): with profiling on but the
//! timeline off, `bootes-par` still publishes the aggregate `par.region.*`
//! metrics below from one timing per worker, skipping the per-chunk clock
//! reads and record pushes.
//!
//! Counters:
//!
//! | counter | meaning |
//! |---------|---------|
//! | `lanczos.matvecs` | operator applications across all solves |
//! | `lanczos.restarts` | thick-restart outer iterations |
//! | `lanczos.iterations` | inner Lanczos steps |
//! | `kmeans.iterations` | Lloyd iterations across all attempts |
//! | `spgemm.flops` | multiply-accumulates performed by sparse kernels |
//! | `cache.hits{operand=B}` / `cache.misses{operand=B}` | accelerator B-row cache outcomes |
//! | `accel.bytes{operand=A}` / `accel.bytes{operand=B}` / `accel.bytes{operand=C}` | simulated DRAM traffic per operand |
//! | `pe.busy_cycles` | total busy cycles across processing elements |
//! | `guard.fallback` | degradation steps taken by the fallback chain |
//! | `guard.fallback.from.<rung>` | degradation steps attributed to the named failed rung |
//! | `guard.failpoint` | deterministic faults fired by `BOOTES_FAILPOINTS` |
//! | `guard.failpoint.delay` | injected `delay:Nms` failpoint firings (sleep in place, no error) |
//! | `cache.hit` | artifact-cache lookups served from memory or disk (`bootes-cache`) |
//! | `cache.miss` | artifact-cache lookups that found nothing valid |
//! | `cache.evict` | entries evicted from the in-memory LRU (incl. oversized rejects) |
//! | `cache.quarantine` | corrupt on-disk entries moved to `quarantine/` |
//! | `cache.quarantine_evicted` | oldest quarantined entries removed to keep `quarantine/` within its cap |
//! | `cache.tmp_swept` | orphaned temp files from torn writes removed by the open-time sweep |
//! | `kernel.flops{kernel=<name>}` | scalar multiply-accumulates performed by the named kernel (`spgemm.dense_acc`, `spgemm.hash_acc`, `similarity.rows`, `spmv`, `kmeans.assign`) |
//! | `kernel.bytes{kernel=<name>}` | estimated bytes moved (operand reads + output writes) by the named kernel |
//! | `par.region.wall_ns{region=<name>}` | accumulated wall time of the named parallel region across invocations (`bootes-par`) |
//! | `par.region.busy_ns{region=<name>}` | accumulated worker busy time of the named region (sum over chunks) |
//! | `par.region.invocations` | parallel region invocations that recorded attribution |
//! | `par.pool.spawned` | worker threads spawned by the persistent `bootes-par` pool (lifetime total) |
//! | `par.pool.dispatches` | worker-slot jobs dispatched to the pool (one per worker per region invocation) |
//! | `spgemm.acc_choice{acc=dense}` / `{acc=hash}` / `{acc=merge}` | rows the adaptive SpGEMM routed to each accumulator variant (`bootes-sparse`) |
//! | `serve.accepted_conns` | connections accepted by the `bootes serve` daemon |
//! | `serve.accept.dropped` | connections dropped by the `serve.accept` failpoint |
//! | `serve.accepted` | work requests admitted into the daemon's bounded queue |
//! | `serve.completed` | work requests fully executed (response sent) |
//! | `serve.rejected.admission` | requests rejected by per-tenant admission control |
//! | `serve.rejected.queue_full` | requests rejected because the bounded queue was full |
//! | `serve.rejected.draining` | requests rejected because the daemon was draining |
//! | `serve.coalesce.hits` | requests served by singleflight-coalescing onto an identical in-flight computation |
//! | `serve.cache.hits` | daemon requests whose leader was answered from the artifact cache |
//! | `serve.tenant.bytes{tenant=<name>}` | payload bytes admitted per tenant (admission accounting) |
//! | `serve.deadline.rejected` | requests whose `deadline_ms` expired in-queue (typed reject, never executed) |
//! | `serve.deadline.exceeded` | requests that executed but finished past their deadline (full answer, flagged) |
//! | `serve.client.retries` | retrying-client attempts repeated after a hinted rejection (`retry_after_ms`) |
//! | `serve.client.reconnects` | retrying-client reconnects after a transport failure |
//! | `drift.donor_hits` | exact-miss lookups that found a usable donor permutation (`bootes-drift`) |
//! | `drift.resplices` | donor permutations patched incrementally instead of recomputed |
//! | `drift.fallbacks` | donor candidates abandoned for a full recompute (threshold exceeded or resplice failed) |
//! | `chaos.runs` | chaos schedules executed by `bootes chaos` (including shrink reruns) |
//! | `chaos.violations` | invariant violations found across a chaos batch |
//! | `chaos.shrink_reruns` | subprocess reruns spent minimizing failing schedules |
//!
//! The `kernel.*` counters pair with `par.region.wall_ns` under the same
//! name to yield achieved MFLOP/s and GB/s per kernel (see
//! `bootes_perf::kernel_rates`).
//!
//! Gauges:
//!
//! | gauge | meaning |
//! |-------|---------|
//! | `lanczos.residual` | worst converged-pair residual of the last solve |
//! | `kmeans.inertia` | best inertia of the last k-means call |
//! | `pe.utilization` | busy/critical-path ratio of the last simulation |
//! | `cache.bytes` | current byte footprint of the in-memory artifact cache |
//! | `par.region.imbalance{region=<name>}` | max/mean worker busy time of the last invocation of the named parallel region (1.0 = perfectly balanced) |
//! | `par.region.utilization{region=<name>}` | Σ busy / (workers × wall) of the last invocation of the named region |
//! | `serve.queue.depth` | current depth of the `bootes serve` admission queue |
//!
//! Histograms (log2 buckets):
//!
//! | histogram | meaning |
//! |-----------|---------|
//! | `accel.pe_cycles` | per-PE cycle totals of the last simulation |
//! | `spgemm.row_nnz` | output-row nonzero counts seen by sparse kernels |
//! | `par.region.chunks_per_worker{region=<name>}` | chunks each worker completed per invocation of the named region |
//! | `serve.queue.wait_ns` | per-request admission-queue wait (`bootes serve`) |
//! | `serve.exec_ns` | per-request execution time on a daemon worker |

mod export;
mod profile;
mod registry;
mod span;

pub use export::{export_chrome_trace, export_json, fmt_ns, render_table};
pub use profile::{
    snapshot, BucketEntry, CounterEntry, GaugeEntry, HistogramEntry, Profile, ProfileMeta,
    SpanNode, PROFILE_FORMAT_VERSION,
};
pub use registry::{
    counter_add, epoch_ns, gauge_set, histogram_record, pin_worker_tid, record_worker_chunk, reset,
    worker_chunks, ChunkRecord,
};
pub use span::{SpanGuard, TimedScope};

use std::sync::atomic::Ordering;

/// Returns whether profiling is currently enabled.
#[inline]
pub fn enabled() -> bool {
    registry::ENABLED.load(Ordering::Relaxed)
}

/// Turns profiling on or off process-wide.
pub fn set_enabled(on: bool) {
    registry::ENABLED.store(on, Ordering::Relaxed);
}

/// Returns whether per-chunk timeline recording is active: profiling must be
/// enabled *and* the timeline switch set. Parallel regions only pay the
/// per-chunk clock reads and [`ChunkRecord`] pushes when this returns true;
/// with profiling on but the timeline off they record aggregate
/// `par.region.*` metrics from one timing per worker instead.
#[inline]
pub fn chunk_timeline() -> bool {
    enabled() && registry::CHUNK_TIMELINE.load(Ordering::Relaxed)
}

/// Turns per-chunk timeline recording on or off. The CLI enables it for
/// `--trace-out` (the Chrome trace's per-worker lanes are built from chunk
/// events); plain `--profile` runs leave it off.
pub fn set_chunk_timeline(on: bool) {
    registry::CHUNK_TIMELINE.store(on, Ordering::Relaxed);
}

/// Enables profiling when `BOOTES_PROFILE` is set to `1` or `true`.
/// Returns the resulting enabled state.
pub fn init_from_env() -> bool {
    if let Ok(v) = std::env::var("BOOTES_PROFILE") {
        if v == "1" || v.eq_ignore_ascii_case("true") {
            set_enabled(true);
        }
    }
    enabled()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global, so tests that mutate it serialize
    /// through this lock (and restore the disabled state on exit).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn with_profiling<R>(f: impl FnOnce() -> R) -> R {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        out
    }

    fn find<'a>(nodes: &'a [SpanNode], name: &str) -> Option<&'a SpanNode> {
        nodes.iter().find(|n| n.name == name)
    }

    #[test]
    fn nested_scopes_build_a_span_tree() {
        let profile = with_profiling(|| {
            {
                let _outer = span!("outer");
                for _ in 0..3 {
                    let _inner = span!("inner");
                }
            }
            {
                let _solo = span!("solo");
            }
            snapshot()
        });
        let outer = find(&profile.spans, "outer").expect("outer span recorded");
        assert_eq!(outer.count, 1);
        let inner = find(&outer.children, "inner").expect("inner nested under outer");
        assert_eq!(inner.count, 3);
        assert!(
            inner.total_ns <= outer.total_ns,
            "children fit inside parent"
        );
        let solo = find(&profile.spans, "solo").expect("solo is a root span");
        assert!(solo.children.is_empty());
        assert_eq!(profile.meta.span_events, 5);
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        {
            let _g = span!("ghost");
            counter_add("ghost.counter", 7);
            gauge_set("ghost.gauge", 1.0);
            histogram_record("ghost.hist", 3);
        }
        let profile = snapshot();
        assert!(profile.spans.is_empty());
        assert!(profile.counters.is_empty());
        assert!(profile.gauges.is_empty());
        assert!(profile.histograms.is_empty());
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let profile = with_profiling(|| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    std::thread::spawn(move || {
                        for _ in 0..100 {
                            counter_add("threads.work", 1);
                        }
                        counter_add(&format!("threads.t{i}"), i + 1)
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            snapshot()
        });
        let work = profile
            .counters
            .iter()
            .find(|c| c.name == "threads.work")
            .expect("shared counter present");
        assert_eq!(work.value, 400);
        for i in 0..4u64 {
            let c = profile
                .counters
                .iter()
                .find(|c| c.name == format!("threads.t{i}"))
                .expect("per-thread counter present");
            assert_eq!(c.value, i + 1);
        }
    }

    #[test]
    fn spans_on_other_threads_keep_their_own_stack() {
        let profile = with_profiling(|| {
            {
                let _outer = span!("main_thread");
                std::thread::spawn(|| {
                    let _w = span!("worker");
                })
                .join()
                .unwrap();
            }
            snapshot()
        });
        // The worker span must be a root, not a child of main_thread.
        assert!(find(&profile.spans, "worker").is_some());
        let main = find(&profile.spans, "main_thread").unwrap();
        assert!(find(&main.children, "worker").is_none());
    }

    #[test]
    fn profile_round_trips_through_json() {
        let profile = with_profiling(|| {
            {
                let _a = span!("stage.a");
                let _b = span!("stage.b");
            }
            counter_add("c.events", 42);
            gauge_set("g.ratio", 0.25);
            histogram_record("h.sizes", 0);
            histogram_record("h.sizes", 9);
            histogram_record("h.sizes", 1024);
            snapshot()
        });
        let json = export_json(&profile);
        let back: Profile = serde_json::from_str(&json).expect("profile parses");
        assert_eq!(back, profile);
        assert_eq!(back.meta.format_version, PROFILE_FORMAT_VERSION);
        let hist = &back.histograms[0];
        assert_eq!(hist.count, 3);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 1024);
        assert_eq!(hist.buckets.iter().map(|b| b.count).sum::<u64>(), 3);
    }

    #[test]
    fn chrome_trace_is_valid_and_complete() {
        let trace = with_profiling(|| {
            {
                let _a = span!("trace.outer");
                let _b = span!("trace.inner");
            }
            export_chrome_trace()
        });
        let v: serde::Value = serde_json::from_str(&trace).expect("trace parses");
        let events = v
            .get("traceEvents")
            .and_then(serde::Value::as_array)
            .expect("traceEvents array");
        let (meta, complete): (Vec<_>, Vec<_>) = events
            .iter()
            .partition(|e| e.get("ph").and_then(serde::Value::as_str) == Some("M"));
        assert_eq!(complete.len(), 2);
        for e in complete {
            assert_eq!(e.get("ph").and_then(serde::Value::as_str), Some("X"));
            assert!(e.get("ts").and_then(serde::Value::as_f64).is_some());
            assert!(e.get("dur").and_then(serde::Value::as_f64).is_some());
            assert!(e.get("name").and_then(serde::Value::as_str).is_some());
        }
        // process_name plus one thread_name per tid (both spans ran on the
        // recording thread).
        assert_eq!(meta.len(), 2);
        assert!(meta
            .iter()
            .any(|e| e.get("name").and_then(serde::Value::as_str) == Some("process_name")));
        assert!(meta
            .iter()
            .any(|e| e.get("name").and_then(serde::Value::as_str) == Some("thread_name")));
    }

    #[test]
    fn worker_chunks_get_labeled_stable_lanes() {
        let trace = with_profiling(|| {
            set_chunk_timeline(true);
            std::thread::scope(|scope| {
                for slot in 0..2usize {
                    scope.spawn(move || {
                        let tid = pin_worker_tid(slot);
                        assert_eq!(tid, 10_000 + slot as u64);
                        let start = epoch_ns();
                        record_worker_chunk("test.region", slot, slot..slot + 4, 4, start, 1000);
                    });
                }
            });
            assert_eq!(worker_chunks().len(), 2);
            let trace = export_chrome_trace();
            set_chunk_timeline(false);
            trace
        });
        let v: serde::Value = serde_json::from_str(&trace).expect("trace parses");
        let events = v
            .get("traceEvents")
            .and_then(serde::Value::as_array)
            .expect("traceEvents array");
        // Both worker lanes are named via thread_name metadata...
        for slot in 0..2u64 {
            let name = format!("worker-{slot}");
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(serde::Value::as_str) == Some("M")
                        && e.get("tid").and_then(serde::Value::as_u64) == Some(10_000 + slot)
                        && e.get("args")
                            .and_then(|a| a.get("name"))
                            .and_then(serde::Value::as_str)
                            == Some(name.as_str())
                }),
                "missing thread_name for {name}"
            );
        }
        // ...and the chunk events landed in those lanes with their args.
        let chunk_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(serde::Value::as_str) == Some("bootes.par"))
            .collect();
        assert_eq!(chunk_events.len(), 2);
        for e in chunk_events {
            assert!(e.get("tid").and_then(serde::Value::as_u64).unwrap() >= 10_000);
            let args = e.get("args").expect("chunk args");
            assert!(args.get("chunk").is_some());
            assert!(args.get("range").is_some());
            assert!(args.get("weight").is_some());
        }
    }

    #[test]
    fn disabled_chunk_recording_is_inert() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        // Disabled profiling is inert even with the timeline switch set...
        set_enabled(false);
        set_chunk_timeline(true);
        record_worker_chunk("ghost.region", 0, 0..8, 8, 0, 100);
        assert!(worker_chunks().is_empty());
        // ...and enabled profiling without the timeline switch is too.
        set_enabled(true);
        set_chunk_timeline(false);
        record_worker_chunk("ghost.region", 0, 0..8, 8, 0, 100);
        assert!(worker_chunks().is_empty());
        set_enabled(false);
    }

    #[test]
    fn timed_scope_measures_even_when_disabled() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        let scope = TimedScope::start("always.timed");
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(scope.elapsed() >= std::time::Duration::from_millis(1));
        drop(scope);
        assert!(snapshot().spans.is_empty(), "no span while disabled");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(812), "812ns");
        assert!(fmt_ns(4_310).contains("µs"));
        assert!(fmt_ns(12_500_000).contains("ms"));
        assert!(fmt_ns(3_000_000_000).ends_with('s'));
    }
}
