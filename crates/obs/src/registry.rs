//! Global metric and span storage behind the enabled gate.
//!
//! All state lives in one process-wide [`Registry`] guarded by coarse
//! mutexes. Hot paths (counter bumps, span entry) check the
//! [`ENABLED`](crate::enabled) flag with a relaxed atomic load before
//! touching any lock, so a disabled build pays one branch per call site.

use std::cell::Cell;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

/// Process-wide profiling switch. Relaxed ordering is sufficient: the flag
/// only gates whether events are recorded, never synchronizes data.
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);

/// Per-chunk timeline switch, off by default even while profiling is
/// enabled: individual [`ChunkRecord`] events (two clock reads + a global
/// mutex push per chunk) are only worth paying for when a Chrome trace
/// export was requested. Aggregate `par.region.*` metrics do not need it.
pub(crate) static CHUNK_TIMELINE: AtomicBool = AtomicBool::new(false);

/// Spans recorded beyond this cap are counted but not stored, bounding
/// memory on pathological workloads (e.g. per-row spans on huge matrices).
pub(crate) const MAX_SPAN_RECORDS: usize = 1 << 18;

/// Worker-chunk records beyond this cap are counted but not stored.
pub(crate) const MAX_CHUNK_RECORDS: usize = 1 << 17;

/// Base of the stable trace-thread-id range reserved for parallel workers.
/// Dense ids handed out to ordinary threads start at 0 and never reach this.
pub(crate) const WORKER_TID_BASE: u64 = 10_000;

/// One completed span occurrence (the raw event, pre-aggregation).
#[derive(Debug, Clone)]
pub(crate) struct SpanRecord {
    /// Full slash-joined path from the thread's span-stack root,
    /// e.g. `"pipeline.preprocess/spectral.lanczos/lanczos.restart"`.
    pub path: String,
    /// Offset of the span start from the profile epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub dur_ns: u64,
    /// Small dense id of the recording thread (for trace export).
    pub tid: u64,
}

/// One chunk of a parallel region executed by one worker: the raw event
/// behind per-worker attribution (trace lanes and imbalance metrics).
#[derive(Debug, Clone)]
pub struct ChunkRecord {
    /// Region name, e.g. `"spgemm.dense_acc"`.
    pub region: String,
    /// Stable trace thread id of the worker that ran the chunk
    /// (see [`crate::pin_worker_tid`]).
    pub tid: u64,
    /// Chunk index within the region's range list.
    pub chunk: usize,
    /// Global index range the chunk covered.
    pub range: Range<usize>,
    /// Work weight of the chunk (item count unless the caller knows better).
    pub weight: u64,
    /// Offset of the chunk start from the profile epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub dur_ns: u64,
}

/// Power-of-two-bucket histogram: bucket `i` counts values `v` with
/// `floor(log2(v)) == i` (value 0 goes to bucket 0).
#[derive(Debug, Clone)]
pub(crate) struct Histogram {
    pub buckets: [u64; 64],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn record(&mut self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

#[derive(Default)]
pub(crate) struct Registry {
    pub spans: Mutex<Vec<SpanRecord>>,
    pub dropped_spans: AtomicU64,
    pub chunks: Mutex<Vec<ChunkRecord>>,
    pub dropped_chunks: AtomicU64,
    pub counters: Mutex<HashMap<String, u64>>,
    pub gauges: Mutex<HashMap<String, f64>>,
    pub histograms: Mutex<HashMap<String, Histogram>>,
    pub thread_ids: Mutex<HashMap<ThreadId, u64>>,
    /// Human names for trace thread ids (worker lanes, pinned explicitly).
    pub thread_names: Mutex<HashMap<u64, String>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Instant all span offsets are measured from. First use pins it.
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds elapsed since the profile epoch — the time base of every
/// span/chunk `start_ns`. Callers that record their own timeline events
/// (e.g. `bootes-par` chunk attribution) read their start offsets here.
pub fn epoch_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

thread_local! {
    /// Stable trace-tid override for parallel workers (set by
    /// [`pin_worker_tid`]; dies with the scoped worker thread).
    static TID_OVERRIDE: Cell<Option<u64>> = const { Cell::new(None) };
}

/// Dense per-thread id used as `tid` in trace export, unless the thread
/// pinned a stable worker id with [`pin_worker_tid`].
pub(crate) fn thread_tid() -> u64 {
    if let Some(tid) = TID_OVERRIDE.with(Cell::get) {
        return tid;
    }
    let reg = registry();
    let mut map = reg.thread_ids.lock().unwrap();
    let next = map.len() as u64;
    *map.entry(std::thread::current().id()).or_insert(next)
}

/// Pins the calling thread to the stable trace thread id of worker `slot`
/// and registers its `worker-<slot>` lane name, so every span and chunk this
/// thread records lands in the same labeled Perfetto lane regardless of how
/// many scoped threads the process has spawned before. Returns the tid.
///
/// The pin is thread-local: it ends when the (scoped) worker thread exits.
/// Cheap enough to call unconditionally; the name registration is skipped
/// while profiling is disabled.
pub fn pin_worker_tid(slot: usize) -> u64 {
    let tid = WORKER_TID_BASE + slot as u64;
    TID_OVERRIDE.with(|c| c.set(Some(tid)));
    if crate::enabled() {
        registry()
            .thread_names
            .lock()
            .unwrap()
            .entry(tid)
            .or_insert_with(|| format!("worker-{slot}"));
    }
    tid
}

/// Records one worker chunk of a parallel region (worker lane attribution).
/// The recording thread's tid is captured automatically. No-op unless the
/// chunk timeline is enabled ([`crate::chunk_timeline`]).
pub fn record_worker_chunk(
    region: &str,
    chunk: usize,
    range: Range<usize>,
    weight: u64,
    start_ns: u64,
    dur_ns: u64,
) {
    if !crate::chunk_timeline() {
        return;
    }
    let reg = registry();
    let tid = thread_tid();
    // Persistent pool workers pin their tid once at spawn, possibly before
    // profiling was enabled (and `reset` clears lane names between runs), so
    // the lane name is (re-)registered at record time.
    if tid >= WORKER_TID_BASE {
        let slot = tid - WORKER_TID_BASE;
        reg.thread_names
            .lock()
            .unwrap()
            .entry(tid)
            .or_insert_with(|| format!("worker-{slot}"));
    }
    let mut chunks = reg.chunks.lock().unwrap();
    if chunks.len() >= MAX_CHUNK_RECORDS {
        reg.dropped_chunks.fetch_add(1, Ordering::Relaxed);
        return;
    }
    chunks.push(ChunkRecord {
        region: region.to_string(),
        tid,
        chunk,
        range,
        weight,
        start_ns,
        dur_ns,
    });
}

/// Snapshot of the raw worker-chunk records (used by the trace exporter and
/// by tests; aggregate metrics are derived at record time by `bootes-par`).
pub fn worker_chunks() -> Vec<ChunkRecord> {
    registry().chunks.lock().unwrap().clone()
}

pub(crate) fn record_span(record: SpanRecord) {
    let reg = registry();
    let mut spans = reg.spans.lock().unwrap();
    if spans.len() >= MAX_SPAN_RECORDS {
        reg.dropped_spans.fetch_add(1, Ordering::Relaxed);
        return;
    }
    spans.push(record);
}

/// Adds `delta` to the named monotonic counter. No-op while disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    let mut counters = registry().counters.lock().unwrap();
    match counters.get_mut(name) {
        Some(c) => *c += delta,
        None => {
            counters.insert(name.to_string(), delta);
        }
    }
}

/// Sets the named gauge to `value` (last write wins). No-op while disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut gauges = registry().gauges.lock().unwrap();
    gauges.insert(name.to_string(), value);
}

/// Records one observation into the named log2-bucket histogram.
/// No-op while disabled.
pub fn histogram_record(name: &str, value: u64) {
    if !crate::enabled() {
        return;
    }
    let mut hists = registry().histograms.lock().unwrap();
    hists
        .entry(name.to_string())
        .or_insert_with(Histogram::new)
        .record(value);
}

/// Clears all recorded spans and metrics (the enabled flag is untouched).
/// Intended for tests and for the CLI before starting a profiled run.
pub fn reset() {
    let reg = registry();
    reg.spans.lock().unwrap().clear();
    reg.dropped_spans.store(0, Ordering::Relaxed);
    reg.chunks.lock().unwrap().clear();
    reg.dropped_chunks.store(0, Ordering::Relaxed);
    reg.counters.lock().unwrap().clear();
    reg.gauges.lock().unwrap().clear();
    reg.histograms.lock().unwrap().clear();
    reg.thread_names.lock().unwrap().clear();
}
