//! Global metric and span storage behind the enabled gate.
//!
//! All state lives in one process-wide [`Registry`] guarded by coarse
//! mutexes. Hot paths (counter bumps, span entry) check the
//! [`ENABLED`](crate::enabled) flag with a relaxed atomic load before
//! touching any lock, so a disabled build pays one branch per call site.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

/// Process-wide profiling switch. Relaxed ordering is sufficient: the flag
/// only gates whether events are recorded, never synchronizes data.
pub(crate) static ENABLED: AtomicBool = AtomicBool::new(false);

/// Spans recorded beyond this cap are counted but not stored, bounding
/// memory on pathological workloads (e.g. per-row spans on huge matrices).
pub(crate) const MAX_SPAN_RECORDS: usize = 1 << 18;

/// One completed span occurrence (the raw event, pre-aggregation).
#[derive(Debug, Clone)]
pub(crate) struct SpanRecord {
    /// Full slash-joined path from the thread's span-stack root,
    /// e.g. `"pipeline.preprocess/spectral.lanczos/lanczos.restart"`.
    pub path: String,
    /// Offset of the span start from the profile epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration, in nanoseconds.
    pub dur_ns: u64,
    /// Small dense id of the recording thread (for trace export).
    pub tid: u64,
}

/// Power-of-two-bucket histogram: bucket `i` counts values `v` with
/// `floor(log2(v)) == i` (value 0 goes to bucket 0).
#[derive(Debug, Clone)]
pub(crate) struct Histogram {
    pub buckets: [u64; 64],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn record(&mut self, v: u64) {
        let bucket = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }
}

#[derive(Default)]
pub(crate) struct Registry {
    pub spans: Mutex<Vec<SpanRecord>>,
    pub dropped_spans: AtomicU64,
    pub counters: Mutex<HashMap<String, u64>>,
    pub gauges: Mutex<HashMap<String, f64>>,
    pub histograms: Mutex<HashMap<String, Histogram>>,
    pub thread_ids: Mutex<HashMap<ThreadId, u64>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static EPOCH: OnceLock<Instant> = OnceLock::new();

pub(crate) fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::default)
}

/// Instant all span offsets are measured from. First use pins it.
pub(crate) fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Dense per-thread id used as `tid` in trace export.
pub(crate) fn thread_tid() -> u64 {
    let reg = registry();
    let mut map = reg.thread_ids.lock().unwrap();
    let next = map.len() as u64;
    *map.entry(std::thread::current().id()).or_insert(next)
}

pub(crate) fn record_span(record: SpanRecord) {
    let reg = registry();
    let mut spans = reg.spans.lock().unwrap();
    if spans.len() >= MAX_SPAN_RECORDS {
        reg.dropped_spans.fetch_add(1, Ordering::Relaxed);
        return;
    }
    spans.push(record);
}

/// Adds `delta` to the named monotonic counter. No-op while disabled.
pub fn counter_add(name: &str, delta: u64) {
    if !crate::enabled() {
        return;
    }
    let mut counters = registry().counters.lock().unwrap();
    match counters.get_mut(name) {
        Some(c) => *c += delta,
        None => {
            counters.insert(name.to_string(), delta);
        }
    }
}

/// Sets the named gauge to `value` (last write wins). No-op while disabled.
pub fn gauge_set(name: &str, value: f64) {
    if !crate::enabled() {
        return;
    }
    let mut gauges = registry().gauges.lock().unwrap();
    gauges.insert(name.to_string(), value);
}

/// Records one observation into the named log2-bucket histogram.
/// No-op while disabled.
pub fn histogram_record(name: &str, value: u64) {
    if !crate::enabled() {
        return;
    }
    let mut hists = registry().histograms.lock().unwrap();
    hists
        .entry(name.to_string())
        .or_insert_with(Histogram::new)
        .record(value);
}

/// Clears all recorded spans and metrics (the enabled flag is untouched).
/// Intended for tests and for the CLI before starting a profiled run.
pub fn reset() {
    let reg = registry();
    reg.spans.lock().unwrap().clear();
    reg.dropped_spans.store(0, Ordering::Relaxed);
    reg.counters.lock().unwrap().clear();
    reg.gauges.lock().unwrap().clear();
    reg.histograms.lock().unwrap().clear();
}
