//! Profile exporters: human-readable table, JSON, and Chrome trace-event
//! format (loadable in `chrome://tracing` / Perfetto).

use crate::profile::{Profile, SpanNode};
use crate::registry::registry;
use serde::Value;

/// Renders `ns` as a compact human duration (`812ns`, `4.31µs`, `12.5ms`…).
pub fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns_f / 1e6)
    } else {
        format!("{:.2}s", ns_f / 1e9)
    }
}

fn push_span_rows(out: &mut String, nodes: &[SpanNode], depth: usize) {
    for node in nodes {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", node.name);
        out.push_str(&format!(
            "  {label:<42} {:>8} {:>12} {:>12} {:>12}\n",
            node.count,
            fmt_ns(node.total_ns),
            fmt_ns(node.mean_ns()),
            fmt_ns(node.max_ns),
        ));
        push_span_rows(out, &node.children, depth + 1);
    }
}

/// Renders the profile as the stderr-friendly table printed by `--profile`.
pub fn render_table(profile: &Profile) -> String {
    let mut out = String::new();
    out.push_str("== bootes profile ==\n");
    if profile.meta.dropped_span_events > 0 {
        out.push_str(&format!(
            "  (span record cap hit: {} events dropped)\n",
            profile.meta.dropped_span_events
        ));
    }

    if !profile.spans.is_empty() {
        out.push_str(&format!(
            "  {:<42} {:>8} {:>12} {:>12} {:>12}\n",
            "span", "count", "total", "mean", "max"
        ));
        push_span_rows(&mut out, &profile.spans, 0);
    }

    if !profile.counters.is_empty() {
        out.push_str("  -- counters --\n");
        for c in &profile.counters {
            out.push_str(&format!("  {:<42} {:>20}\n", c.name, c.value));
        }
    }

    if !profile.gauges.is_empty() {
        out.push_str("  -- gauges --\n");
        for g in &profile.gauges {
            out.push_str(&format!("  {:<42} {:>20.6}\n", g.name, g.value));
        }
    }

    if !profile.histograms.is_empty() {
        out.push_str("  -- histograms --\n");
        for h in &profile.histograms {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            out.push_str(&format!(
                "  {:<42} n={} min={} mean={} max={}\n",
                h.name, h.count, h.min, mean, h.max
            ));
        }
    }
    out
}

/// Serializes the profile as pretty-printed JSON.
pub fn export_json(profile: &Profile) -> String {
    serde_json::to_string_pretty(profile).expect("profile serializes")
}

/// One Chrome metadata event (`"ph": "M"`) naming a process or thread.
fn metadata_event(name: &str, tid: Option<u64>, value: &str) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::UInt(1)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid".to_string(), Value::UInt(tid)));
    }
    fields.push((
        "args".to_string(),
        Value::Object(vec![("name".to_string(), Value::Str(value.to_string()))]),
    ));
    Value::Object(fields)
}

/// Exports the raw span and worker-chunk records in Chrome trace-event JSON:
/// an object with a `traceEvents` array of complete (`"ph": "X"`) events
/// whose `ts`/`dur` are microseconds from the profile epoch, preceded by
/// `process_name`/`thread_name` metadata events so Perfetto shows one
/// labeled lane per worker (`worker-0`, `worker-1`, ...) instead of a merged
/// track. Worker lanes use the stable tids pinned by
/// [`crate::pin_worker_tid`]; every other thread keeps its dense id and is
/// labeled `main` (tid 0) or `thread-N`.
pub fn export_chrome_trace() -> String {
    let reg = registry();
    let mut events: Vec<Value> = Vec::new();

    // Metadata first: process name, then one thread_name per tid seen in
    // either record stream (explicit worker names win).
    let names = reg.thread_names.lock().unwrap().clone();
    let records = reg.spans.lock().unwrap();
    let chunks = reg.chunks.lock().unwrap();
    let mut tids: Vec<u64> = records
        .iter()
        .map(|r| r.tid)
        .chain(chunks.iter().map(|c| c.tid))
        .chain(names.keys().copied())
        .collect();
    tids.sort_unstable();
    tids.dedup();
    events.push(metadata_event("process_name", None, "bootes"));
    for tid in tids {
        let label = match names.get(&tid) {
            Some(name) => name.clone(),
            None if tid == 0 => "main".to_string(),
            None => format!("thread-{tid}"),
        };
        events.push(metadata_event("thread_name", Some(tid), &label));
    }

    events.extend(records.iter().map(|r| {
        let name = r.path.rsplit('/').next().unwrap_or(&r.path);
        Value::Object(vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("cat".to_string(), Value::Str("bootes".to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::Float(r.start_ns as f64 / 1e3)),
            ("dur".to_string(), Value::Float(r.dur_ns as f64 / 1e3)),
            ("pid".to_string(), Value::UInt(1)),
            ("tid".to_string(), Value::UInt(r.tid)),
            (
                "args".to_string(),
                Value::Object(vec![("path".to_string(), Value::Str(r.path.clone()))]),
            ),
        ])
    }));
    // Worker chunks as their own complete events in the worker lanes, so the
    // trace shows which rows each worker processed and for how long.
    events.extend(chunks.iter().map(|c| {
        Value::Object(vec![
            ("name".to_string(), Value::Str(c.region.clone())),
            ("cat".to_string(), Value::Str("bootes.par".to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::Float(c.start_ns as f64 / 1e3)),
            ("dur".to_string(), Value::Float(c.dur_ns as f64 / 1e3)),
            ("pid".to_string(), Value::UInt(1)),
            ("tid".to_string(), Value::UInt(c.tid)),
            (
                "args".to_string(),
                Value::Object(vec![
                    ("chunk".to_string(), Value::UInt(c.chunk as u64)),
                    (
                        "range".to_string(),
                        Value::Str(format!("{}..{}", c.range.start, c.range.end)),
                    ),
                    ("weight".to_string(), Value::UInt(c.weight)),
                ]),
            ),
        ])
    }));
    drop(records);
    drop(chunks);
    let trace = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&trace).expect("trace serializes")
}
