//! Profile exporters: human-readable table, JSON, and Chrome trace-event
//! format (loadable in `chrome://tracing` / Perfetto).

use crate::profile::{Profile, SpanNode};
use crate::registry::registry;
use serde::Value;

/// Renders `ns` as a compact human duration (`812ns`, `4.31µs`, `12.5ms`…).
pub fn fmt_ns(ns: u64) -> String {
    let ns_f = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns_f / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns_f / 1e6)
    } else {
        format!("{:.2}s", ns_f / 1e9)
    }
}

fn push_span_rows(out: &mut String, nodes: &[SpanNode], depth: usize) {
    for node in nodes {
        let indent = "  ".repeat(depth);
        let label = format!("{indent}{}", node.name);
        out.push_str(&format!(
            "  {label:<42} {:>8} {:>12} {:>12} {:>12}\n",
            node.count,
            fmt_ns(node.total_ns),
            fmt_ns(node.mean_ns()),
            fmt_ns(node.max_ns),
        ));
        push_span_rows(out, &node.children, depth + 1);
    }
}

/// Renders the profile as the stderr-friendly table printed by `--profile`.
pub fn render_table(profile: &Profile) -> String {
    let mut out = String::new();
    out.push_str("== bootes profile ==\n");
    if profile.meta.dropped_span_events > 0 {
        out.push_str(&format!(
            "  (span record cap hit: {} events dropped)\n",
            profile.meta.dropped_span_events
        ));
    }

    if !profile.spans.is_empty() {
        out.push_str(&format!(
            "  {:<42} {:>8} {:>12} {:>12} {:>12}\n",
            "span", "count", "total", "mean", "max"
        ));
        push_span_rows(&mut out, &profile.spans, 0);
    }

    if !profile.counters.is_empty() {
        out.push_str("  -- counters --\n");
        for c in &profile.counters {
            out.push_str(&format!("  {:<42} {:>20}\n", c.name, c.value));
        }
    }

    if !profile.gauges.is_empty() {
        out.push_str("  -- gauges --\n");
        for g in &profile.gauges {
            out.push_str(&format!("  {:<42} {:>20.6}\n", g.name, g.value));
        }
    }

    if !profile.histograms.is_empty() {
        out.push_str("  -- histograms --\n");
        for h in &profile.histograms {
            let mean = h.sum.checked_div(h.count).unwrap_or(0);
            out.push_str(&format!(
                "  {:<42} n={} min={} mean={} max={}\n",
                h.name, h.count, h.min, mean, h.max
            ));
        }
    }
    out
}

/// Serializes the profile as pretty-printed JSON.
pub fn export_json(profile: &Profile) -> String {
    serde_json::to_string_pretty(profile).expect("profile serializes")
}

/// Exports the raw span records in Chrome trace-event JSON: an object with a
/// `traceEvents` array of complete (`"ph": "X"`) events whose `ts`/`dur` are
/// microseconds from the profile epoch.
pub fn export_chrome_trace() -> String {
    let reg = registry();
    let records = reg.spans.lock().unwrap();
    let events: Vec<Value> = records
        .iter()
        .map(|r| {
            let name = r.path.rsplit('/').next().unwrap_or(&r.path);
            Value::Object(vec![
                ("name".to_string(), Value::Str(name.to_string())),
                ("cat".to_string(), Value::Str("bootes".to_string())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::Float(r.start_ns as f64 / 1e3)),
                ("dur".to_string(), Value::Float(r.dur_ns as f64 / 1e3)),
                ("pid".to_string(), Value::UInt(1)),
                ("tid".to_string(), Value::UInt(r.tid)),
                (
                    "args".to_string(),
                    Value::Object(vec![("path".to_string(), Value::Str(r.path.clone()))]),
                ),
            ])
        })
        .collect();
    drop(records);
    let trace = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
    ]);
    serde_json::to_string(&trace).expect("trace serializes")
}
