//! Serializable profile snapshot: aggregated span tree plus metric tables.
//!
//! [`snapshot`] folds the raw span records into a hierarchical tree (one
//! node per distinct span path, accumulating count/total/min/max) and copies
//! the metric maps into sorted, serde-friendly vectors.

use crate::registry::{registry, Histogram};
use serde::{Deserialize, Serialize};
use std::sync::atomic::Ordering;

/// Version stamp for the profile JSON layout.
pub const PROFILE_FORMAT_VERSION: u32 = 1;

/// A complete profile snapshot. Top-level JSON keys: `meta`, `spans`,
/// `counters`, `gauges`, `histograms`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    pub meta: ProfileMeta,
    /// Root spans of the hierarchical timer tree, heaviest first.
    pub spans: Vec<SpanNode>,
    /// Monotonic counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Last-write-wins gauges, sorted by name.
    pub gauges: Vec<GaugeEntry>,
    /// Log2-bucket histograms, sorted by name.
    pub histograms: Vec<HistogramEntry>,
}

/// Bookkeeping about the capture itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileMeta {
    pub format_version: u32,
    /// Number of span events aggregated into the tree.
    pub span_events: u64,
    /// Span events discarded after the in-memory record cap was reached.
    pub dropped_span_events: u64,
}

/// Aggregated timings for one span path in the tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name (the last path segment).
    pub name: String,
    /// Number of times this exact path was recorded.
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
    /// Spans that were opened while this one was on the stack.
    pub children: Vec<SpanNode>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    pub name: String,
    pub value: u64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    pub name: String,
    pub value: f64,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Occupied `[lo, hi)` power-of-two buckets only.
    pub buckets: Vec<BucketEntry>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketEntry {
    pub lo: u64,
    pub hi: u64,
    pub count: u64,
}

impl SpanNode {
    fn empty(name: &str) -> SpanNode {
        SpanNode {
            name: name.to_string(),
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            children: Vec::new(),
        }
    }

    /// Mean duration in nanoseconds (0 for a never-recorded interior node).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

fn sort_tree(nodes: &mut Vec<SpanNode>) {
    nodes.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    for node in nodes {
        sort_tree(&mut node.children);
    }
}

fn histogram_entry(name: &str, h: &Histogram) -> HistogramEntry {
    let buckets = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| BucketEntry {
            lo: if i == 0 { 0 } else { 1u64 << i },
            hi: if i >= 63 { u64::MAX } else { 1u64 << (i + 1) },
            count: c,
        })
        .collect();
    HistogramEntry {
        name: name.to_string(),
        count: h.count,
        sum: h.sum,
        min: if h.count == 0 { 0 } else { h.min },
        max: h.max,
        buckets,
    }
}

/// Captures the current registry contents as a [`Profile`].
pub fn snapshot() -> Profile {
    let reg = registry();

    fn insert(level: &mut Vec<SpanNode>, path: &str, dur_ns: u64) {
        let (segment, rest) = match path.split_once('/') {
            Some((head, tail)) => (head, Some(tail)),
            None => (path, None),
        };
        let idx = match level.iter().position(|n| n.name == segment) {
            Some(i) => i,
            None => {
                level.push(SpanNode::empty(segment));
                level.len() - 1
            }
        };
        let node = &mut level[idx];
        match rest {
            Some(tail) => insert(&mut node.children, tail, dur_ns),
            None => {
                node.count += 1;
                node.total_ns += dur_ns;
                node.min_ns = node.min_ns.min(dur_ns);
                node.max_ns = node.max_ns.max(dur_ns);
            }
        }
    }

    let mut roots: Vec<SpanNode> = Vec::new();
    let records = reg.spans.lock().unwrap();
    for record in records.iter() {
        insert(&mut roots, &record.path, record.dur_ns);
    }
    let span_events = records.len() as u64;
    drop(records);
    sort_tree(&mut roots);
    // Interior nodes that were never themselves recorded keep min_ns: MAX;
    // normalize so the JSON is sane.
    fn normalize(nodes: &mut [SpanNode]) {
        for n in nodes {
            if n.count == 0 {
                n.min_ns = 0;
            }
            normalize(&mut n.children);
        }
    }
    normalize(&mut roots);

    let mut counters: Vec<CounterEntry> = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|(name, &value)| CounterEntry {
            name: name.clone(),
            value,
        })
        .collect();
    counters.sort_by(|a, b| a.name.cmp(&b.name));

    let mut gauges: Vec<GaugeEntry> = reg
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|(name, &value)| GaugeEntry {
            name: name.clone(),
            value,
        })
        .collect();
    gauges.sort_by(|a, b| a.name.cmp(&b.name));

    let mut histograms: Vec<HistogramEntry> = reg
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|(name, h)| histogram_entry(name, h))
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));

    Profile {
        meta: ProfileMeta {
            format_version: PROFILE_FORMAT_VERSION,
            span_events,
            dropped_span_events: reg.dropped_spans.load(Ordering::Relaxed),
        },
        spans: roots,
        counters,
        gauges,
        histograms,
    }
}
