//! Energy model for SpGEMM execution.
//!
//! The paper's §5.2 argues that reducing off-chip traffic improves energy
//! efficiency because moving data from DRAM costs ~4000×–64000× the energy of
//! a computation (citing Dally). This module turns a [`TrafficReport`] into
//! an energy estimate with configurable per-event costs, so the harness can
//! report the energy-side of every traffic reduction.

use serde::{Deserialize, Serialize};

use crate::report::TrafficReport;

/// Per-event energy costs in picojoules.
///
/// Defaults are representative of a 1 GHz HBM-attached accelerator in a
/// recent process node: a 64-bit MAC at ~1 pJ, on-chip SRAM at ~0.5 pJ/byte,
/// DRAM at ~15 pJ/byte (≈ 1000 pJ per 64 B line — three orders of magnitude
/// above the MAC, the ratio the paper's §5.2 invokes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per off-chip byte moved (pJ).
    pub dram_pj_per_byte: f64,
    /// Energy per on-chip cache byte touched (pJ).
    pub cache_pj_per_byte: f64,
    /// Energy per multiply-accumulate (pJ).
    pub mac_pj: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            dram_pj_per_byte: 15.0,
            cache_pj_per_byte: 0.5,
            mac_pj: 1.0,
        }
    }
}

/// Energy attribution of one simulated SpGEMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Off-chip data movement energy (pJ).
    pub dram_pj: f64,
    /// On-chip cache access energy (pJ).
    pub cache_pj: f64,
    /// Compute energy (pJ).
    pub compute_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.cache_pj + self.compute_pj
    }

    /// Fraction of the total spent on off-chip movement.
    pub fn dram_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t > 0.0 {
            self.dram_pj / t
        } else {
            0.0
        }
    }
}

impl EnergyModel {
    /// Estimates the energy of a simulated run.
    ///
    /// Cache energy covers every `B` access (hit or miss) at line
    /// granularity plus the streamed traffic passing through on-chip
    /// buffers once.
    pub fn energy(&self, report: &TrafficReport, line_bytes: usize) -> EnergyBreakdown {
        let cache_touches = (report.cache_hits + report.cache_misses) * line_bytes as u64;
        let streamed = report.a_bytes + report.c_bytes;
        EnergyBreakdown {
            dram_pj: report.total_bytes() as f64 * self.dram_pj_per_byte,
            cache_pj: (cache_touches + streamed) as f64 * self.cache_pj_per_byte,
            compute_pj: report.macs as f64 * self.mac_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(b_bytes: u64, hits: u64, misses: u64, macs: u64) -> TrafficReport {
        TrafficReport {
            accelerator: "test".into(),
            a_bytes: 1000,
            b_bytes,
            c_bytes: 500,
            compulsory_a: 1000,
            compulsory_b: 2000,
            compulsory_c: 500,
            cache_hits: hits,
            cache_misses: misses,
            macs,
            cycles: 1,
            dram_cycles: 1,
            max_pe_cycles: 1,
        }
    }

    #[test]
    fn dram_dominates_with_default_costs() {
        let e = EnergyModel::default().energy(&report(50_000, 100, 800, 10_000), 64);
        assert!(
            e.dram_fraction() > 0.5,
            "dram fraction {}",
            e.dram_fraction()
        );
        assert!(e.total_pj() > 0.0);
    }

    #[test]
    fn traffic_reduction_reduces_energy() {
        let m = EnergyModel::default();
        let before = m.energy(&report(100_000, 100, 1600, 10_000), 64);
        let after = m.energy(&report(10_000, 1500, 200, 10_000), 64);
        assert!(after.total_pj() < before.total_pj());
        // Compute energy is identical — only movement changed.
        assert_eq!(after.compute_pj, before.compute_pj);
    }

    #[test]
    fn movement_to_compute_ratio_is_orders_of_magnitude() {
        // One 64-byte line vs one MAC: the paper's ~1000x ratio.
        let m = EnergyModel::default();
        let per_line = 64.0 * m.dram_pj_per_byte;
        assert!(per_line / m.mac_pj >= 900.0);
    }

    #[test]
    fn zero_report_gives_zero_energy() {
        let e = EnergyModel::default().energy(&report(0, 0, 0, 0), 64);
        // a/c bytes still contribute; compute and B-cache are zero.
        assert_eq!(e.compute_pj, 0.0);
        assert!(e.dram_pj > 0.0);
        assert!(e.dram_fraction() > 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = EnergyModel::default();
        let j = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<EnergyModel>(&j).unwrap(), m);
    }
}
