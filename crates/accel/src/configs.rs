//! Accelerator configurations.

use serde::{Deserialize, Serialize};

use crate::error::AccelError;

/// Parameters of a row-wise-product SpGEMM accelerator.
///
/// The three presets ([`flexagon`], [`gamma`], [`trapezoid`]) carry the cache
/// sizes and PE counts the paper reports in §4; the remaining knobs (line
/// size, associativity, element width, DRAM bandwidth, clock) are shared
/// defaults chosen to be representative of HBM-attached accelerators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Human-readable accelerator name.
    pub name: String,
    /// Number of processing elements.
    pub num_pes: usize,
    /// On-chip cache capacity in bytes (holds rows of `B`).
    pub cache_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Cache associativity (ways per set).
    pub ways: usize,
    /// Bytes per stored nonzero (value + packed column index).
    pub elem_bytes: usize,
    /// DRAM bandwidth in bytes per accelerator cycle.
    pub dram_bytes_per_cycle: f64,
    /// Clock frequency in Hz, used to convert cycles to seconds for the
    /// end-to-end speedup study.
    pub clock_hz: f64,
}

impl AcceleratorConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), AccelError> {
        if self.num_pes == 0 {
            return Err(AccelError::InvalidConfig("num_pes must be > 0".into()));
        }
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(AccelError::InvalidConfig(
                "line_bytes must be a positive power of two".into(),
            ));
        }
        if self.ways == 0 {
            return Err(AccelError::InvalidConfig("ways must be > 0".into()));
        }
        if self.cache_bytes < self.line_bytes * self.ways {
            return Err(AccelError::InvalidConfig(
                "cache must hold at least one full set".into(),
            ));
        }
        if self.elem_bytes == 0 {
            return Err(AccelError::InvalidConfig("elem_bytes must be > 0".into()));
        }
        let bw_valid = self.dram_bytes_per_cycle > 0.0;
        if !bw_valid {
            return Err(AccelError::InvalidConfig(
                "dram_bytes_per_cycle must be positive".into(),
            ));
        }
        let clock_valid = self.clock_hz > 0.0;
        if !clock_valid {
            return Err(AccelError::InvalidConfig(
                "clock_hz must be positive".into(),
            ));
        }
        Ok(())
    }

    /// Number of cache sets implied by the size/line/ways parameters.
    pub fn num_sets(&self) -> usize {
        (self.cache_bytes / (self.line_bytes * self.ways)).max(1)
    }
}

fn base(name: &str, num_pes: usize, cache_bytes: usize) -> AcceleratorConfig {
    AcceleratorConfig {
        name: name.to_string(),
        num_pes,
        cache_bytes,
        line_bytes: 64,
        ways: 8,
        // 8-byte value + 4-byte column index.
        elem_bytes: 12,
        // HBM-class bandwidth at a 1 GHz accelerator clock: 128 B/cycle.
        dram_bytes_per_cycle: 128.0,
        clock_hz: 1.0e9,
    }
}

/// Flexagon: 1 MB cache, 67 PEs (paper §4).
pub fn flexagon() -> AcceleratorConfig {
    base("flexagon", 67, 1 << 20)
}

/// GAMMA: 3 MB cache, 64 PEs (paper §4).
pub fn gamma() -> AcceleratorConfig {
    base("gamma", 64, 3 << 20)
}

/// Trapezoid: 4 MB cache, 128 PEs (paper §4).
pub fn trapezoid() -> AcceleratorConfig {
    base("trapezoid", 128, 4 << 20)
}

/// All three paper accelerators, in presentation order.
pub fn all() -> Vec<AcceleratorConfig> {
    vec![flexagon(), gamma(), trapezoid()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let f = flexagon();
        assert_eq!((f.num_pes, f.cache_bytes), (67, 1 << 20));
        let g = gamma();
        assert_eq!((g.num_pes, g.cache_bytes), (64, 3 << 20));
        let t = trapezoid();
        assert_eq!((t.num_pes, t.cache_bytes), (128, 4 << 20));
        for c in all() {
            c.validate().unwrap();
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = flexagon();
        c.num_pes = 0;
        assert!(c.validate().is_err());
        let mut c = flexagon();
        c.line_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = flexagon();
        c.cache_bytes = 64;
        assert!(c.validate().is_err());
        let mut c = flexagon();
        c.dram_bytes_per_cycle = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn set_count_is_consistent() {
        let c = flexagon();
        assert_eq!(c.num_sets(), (1 << 20) / (64 * 8));
    }

    #[test]
    fn serde_roundtrip() {
        let c = trapezoid();
        let json = serde_json::to_string(&c).unwrap();
        let back: AcceleratorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
