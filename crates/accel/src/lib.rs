#![warn(missing_docs)]
//! Row-wise-dataflow SpGEMM accelerator simulator.
//!
//! The Bootes paper evaluates on three accelerators — Flexagon (1 MB cache,
//! 67 PEs), GAMMA (3 MB, 64 PEs) and Trapezoid (4 MB, 128 PEs) — all using
//! the row-wise product, simulated with Trapezoid's infrastructure. This
//! crate provides the equivalent substrate: a parameterized event-ordered
//! simulator with
//!
//! - a shared set-associative LRU cache holding rows of `B` ([`cache`]),
//! - a PE array consuming rows of `A` with round-robin work assignment
//!   ([`engine`]),
//! - a bandwidth-limited DRAM model,
//! - per-operand off-chip traffic accounting (`A` reads / `B` reads /
//!   `C` writes) and a compulsory-traffic baseline ([`report`]),
//!
//! which together reproduce the quantities behind Figures 4 and 6 and
//! Table 4. Absolute cycle counts are not calibrated to the authors' testbed;
//! the modeled mechanisms (cache capacity, PE count, bandwidth) are what
//! drive the paper's comparative results.
//!
//! # Example
//!
//! ```
//! use bootes_accel::{configs, simulate_spgemm};
//! use bootes_sparse::CsrMatrix;
//!
//! # fn main() -> Result<(), bootes_accel::AccelError> {
//! let a = CsrMatrix::identity(64);
//! let report = simulate_spgemm(&a, &a, &configs::flexagon())?;
//! assert!(report.total_bytes() >= report.compulsory_bytes());
//! # Ok(())
//! # }
//! ```

pub mod cache;
pub mod configs;
pub mod dataflows;
pub mod energy;
pub mod engine;
pub mod error;
pub mod report;

pub use cache::LruCache;
pub use configs::AcceleratorConfig;
pub use dataflows::{simulate_inner, simulate_outer};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use engine::simulate_spgemm;
pub use error::AccelError;
pub use report::TrafficReport;
