//! Error type for the accelerator simulator.

use std::fmt;

use bootes_sparse::SparseError;

/// Error returned by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// Operand shapes are incompatible with the requested product.
    Sparse(SparseError),
    /// The accelerator configuration is internally inconsistent (zero PEs,
    /// cache smaller than one line, zero bandwidth, ...).
    InvalidConfig(String),
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::Sparse(e) => write!(f, "sparse operand error: {e}"),
            AccelError::InvalidConfig(msg) => write!(f, "invalid accelerator config: {msg}"),
        }
    }
}

impl std::error::Error for AccelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccelError::Sparse(e) => Some(e),
            AccelError::InvalidConfig(_) => None,
        }
    }
}

impl From<SparseError> for AccelError {
    fn from(e: SparseError) -> Self {
        AccelError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = AccelError::InvalidConfig("zero PEs".to_string());
        assert!(e.to_string().contains("zero PEs"));
        assert!(e.source().is_none());
    }
}
