//! The row-wise-dataflow SpGEMM engine.
//!
//! Simulates `C = A · B` on a row-wise-product accelerator: rows of `A` are
//! handed to PEs in order (round-robin over idle PEs), each nonzero `A[i,k]`
//! fetches row `k` of `B` through the shared LRU cache, and partial sums stay
//! on-chip (row-wise psums are small — Table 1). `A` is streamed in and `C`
//! streamed out, so their traffic is compulsory; all reuse-dependent traffic
//! is `B`'s, which is exactly the quantity row reordering optimizes.
//!
//! Timing is a roofline over (a) the busiest PE's MAC count including load
//! imbalance and (b) total DRAM bytes over the bandwidth, whichever is the
//! bottleneck.

use bootes_sparse::{CsrMatrix, SparseError};

use crate::cache::LruCache;
use crate::configs::AcceleratorConfig;
use crate::error::AccelError;
use crate::report::TrafficReport;

/// Size of a compressed row pointer in bytes (CSR `indptr` entry).
const PTR_BYTES: u64 = 4;

/// Simulates the row-wise SpGEMM `a * b` on the given accelerator.
///
/// Returns per-operand off-chip traffic, cache statistics and a cycle count.
///
/// # Errors
///
/// - [`AccelError::Sparse`] if `a.ncols() != b.nrows()`.
/// - [`AccelError::InvalidConfig`] if the configuration fails validation.
///
/// # Example
///
/// ```
/// use bootes_accel::{configs, simulate_spgemm};
/// use bootes_sparse::CsrMatrix;
///
/// # fn main() -> Result<(), bootes_accel::AccelError> {
/// let a = CsrMatrix::identity(128);
/// let r = simulate_spgemm(&a, &a, &configs::gamma())?;
/// assert_eq!(r.macs, 128);
/// # Ok(())
/// # }
/// ```
pub fn simulate_spgemm(
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &AcceleratorConfig,
) -> Result<TrafficReport, AccelError> {
    cfg.validate()?;
    if a.ncols() != b.nrows() {
        return Err(AccelError::Sparse(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
        }));
    }
    let _span = bootes_obs::span!("accel.simulate");

    // Map each row of B to a contiguous, row-aligned range of cache lines.
    let mut row_first_line = Vec::with_capacity(b.nrows() + 1);
    let mut next_line = 0u64;
    row_first_line.push(0u64);
    for r in 0..b.nrows() {
        let bytes = b.row_nnz(r) as u64 * cfg.elem_bytes as u64;
        next_line += bytes.div_ceil(cfg.line_bytes as u64);
        row_first_line.push(next_line);
    }

    let mut cache = LruCache::new(cfg.num_sets(), cfg.ways);
    let mut macs = 0u64;
    let mut pe_cycles = vec![0u64; cfg.num_pes];

    // PE scheduling: idle PEs take the next row of A (a PE that drains its
    // row picks up the next one within the same step); each simulation step
    // advances every busy PE by one nonzero of its current row, so B fetches
    // from concurrently-active rows interleave in the shared cache just as
    // concurrent PEs would interleave them. The schedule is the shared
    // generator in `bootes_sparse::schedule`, which the analytical reuse
    // profile consumes too — the two can never diverge.
    bootes_sparse::schedule::for_each_scheduled_event(a, cfg.num_pes, |ev| match ev {
        bootes_sparse::schedule::PeEvent::Dispatch { pe, .. } => {
            // Row-dispatch overhead.
            pe_cycles[pe] += 1;
        }
        bootes_sparse::schedule::PeEvent::Access { pe, col: k, .. } => {
            // Fetch every line of B row k through the shared cache.
            for line in row_first_line[k]..row_first_line[k + 1] {
                cache.access(line);
            }
            let fiber = b.row_nnz(k) as u64;
            macs += fiber;
            // One MAC per cycle per PE; an empty fiber still costs the lookup.
            pe_cycles[pe] += fiber.max(1);
        }
    });

    // Symbolic row-wise pass for nnz(C) (compulsory output traffic).
    let nnz_c = {
        let _span = bootes_obs::span!("accel.symbolic");
        symbolic_nnz(a, b)
    };

    let a_bytes = a.nnz() as u64 * cfg.elem_bytes as u64 + (a.nrows() as u64 + 1) * PTR_BYTES;
    let compulsory_b = b.nnz() as u64 * cfg.elem_bytes as u64 + (b.nrows() as u64 + 1) * PTR_BYTES;
    let c_bytes = nnz_c * cfg.elem_bytes as u64 + (a.nrows() as u64 + 1) * PTR_BYTES;
    let b_bytes = cache.misses() * cfg.line_bytes as u64;

    let total_bytes = a_bytes + b_bytes + c_bytes;
    let dram_cycles = (total_bytes as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
    let max_pe_cycles = pe_cycles.iter().copied().max().unwrap_or(0);
    let cycles = dram_cycles.max(max_pe_cycles);

    if bootes_obs::enabled() {
        bootes_obs::counter_add("cache.hits{operand=B}", cache.hits());
        bootes_obs::counter_add("cache.misses{operand=B}", cache.misses());
        bootes_obs::counter_add("accel.bytes{operand=A}", a_bytes);
        bootes_obs::counter_add("accel.bytes{operand=B}", b_bytes);
        bootes_obs::counter_add("accel.bytes{operand=C}", c_bytes);
        let busy: u64 = pe_cycles.iter().sum();
        bootes_obs::counter_add("pe.busy_cycles", busy);
        for &c in &pe_cycles {
            bootes_obs::histogram_record("accel.pe_cycles", c);
        }
        // Mean PE occupancy relative to the busiest PE's critical path.
        if max_pe_cycles > 0 {
            let util = busy as f64 / (max_pe_cycles as f64 * cfg.num_pes as f64);
            bootes_obs::gauge_set("pe.utilization", util);
        }
    }

    Ok(TrafficReport {
        accelerator: cfg.name.clone(),
        a_bytes,
        b_bytes,
        c_bytes,
        compulsory_a: a_bytes,
        compulsory_b,
        compulsory_c: c_bytes,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        macs,
        cycles,
        dram_cycles,
        max_pe_cycles,
    })
}

/// Counts `nnz(A · B)` without materializing values (symbolic Gustavson).
pub(crate) fn symbolic_nnz(a: &CsrMatrix, b: &CsrMatrix) -> u64 {
    let n = b.ncols();
    let mut stamp = vec![usize::MAX; n];
    let mut count = 0u64;
    for i in 0..a.nrows() {
        for &k in a.row(i).0 {
            for &j in b.row(k).0 {
                if stamp[j] != i {
                    stamp[j] = i;
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use bootes_sparse::{ops, CooMatrix};

    /// n rows, each touching the same `span` columns of B starting at a
    /// row-group-dependent offset.
    fn grouped(n: usize, groups: usize, span: usize, interleave: bool) -> CsrMatrix {
        let cols = groups * span;
        let mut coo = CooMatrix::new(n, cols);
        for r in 0..n {
            let g = if interleave {
                r % groups
            } else {
                r * groups / n
            };
            for c in 0..span {
                coo.push(r, g * span + c, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    fn dense_b(rows: usize, cols: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn identity_product_traffic_is_near_compulsory() {
        let a = CsrMatrix::identity(256);
        let r = simulate_spgemm(&a, &a, &configs::gamma()).unwrap();
        // Each B row is fetched exactly once (no capacity misses) ...
        assert_eq!(r.cache_misses, 256);
        assert_eq!(r.cache_hits, 0);
        assert_eq!(r.macs, 256);
        // ... so B traffic is exactly one line per single-element row: all
        // excess over compulsory is line padding, bounded by line/elem bytes.
        assert_eq!(r.b_bytes, 256 * 64);
        assert!(r.normalized_traffic() < 64.0 / 12.0);
    }

    #[test]
    fn macs_match_flop_count() {
        let a = grouped(100, 4, 8, true);
        let b = dense_b(32, 16);
        let r = simulate_spgemm(&a, &b, &configs::trapezoid()).unwrap();
        assert_eq!(r.macs, ops::spgemm_flops(&a, &b).unwrap());
    }

    #[test]
    fn reuse_creates_hits() {
        // Every row of A touches the same 8 rows of B: after the first
        // fetch all subsequent accesses hit.
        let a = grouped(64, 1, 8, false);
        let b = dense_b(8, 64);
        let r = simulate_spgemm(&a, &b, &configs::gamma()).unwrap();
        assert!(r.hit_rate() > 0.9, "hit rate {}", r.hit_rate());
    }

    #[test]
    fn small_cache_thrashes_where_big_cache_does_not() {
        // Working set sized between Flexagon's 1 MB and Trapezoid's 4 MB,
        // swept twice so the second sweep hits only if it fits.
        let b_rows = 2048;
        let b = dense_b(b_rows, 96); // 96 * 12B = 1152 B/row => ~2.3 MB total
        let mut coo = CooMatrix::new(512, b_rows);
        let mut state = 1u64;
        for r in 0..512 {
            for _ in 0..8 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let c = ((state >> 33) % b_rows as u64) as usize;
                coo.push(r, c, 1.0).ok();
            }
        }
        let a = coo.to_csr();
        let small = simulate_spgemm(&a, &b, &configs::flexagon()).unwrap();
        let big = simulate_spgemm(&a, &b, &configs::trapezoid()).unwrap();
        assert!(
            small.b_bytes > big.b_bytes,
            "flexagon {} vs trapezoid {}",
            small.b_bytes,
            big.b_bytes
        );
    }

    #[test]
    fn grouping_similar_rows_reduces_b_traffic() {
        // The same matrix with rows interleaved vs grouped: the grouped
        // version reuses B rows while they are still resident.
        let groups = 64;
        let span = 32;
        let n = 2048;
        let b = dense_b(groups * span, 64);
        let interleaved = grouped(n, groups, span, true);
        let contiguous = grouped(n, groups, span, false);
        let cfg = configs::flexagon();
        let r_int = simulate_spgemm(&interleaved, &b, &cfg).unwrap();
        let r_grp = simulate_spgemm(&contiguous, &b, &cfg).unwrap();
        assert!(
            r_grp.b_bytes < r_int.b_bytes,
            "grouped {} vs interleaved {}",
            r_grp.b_bytes,
            r_int.b_bytes
        );
        // A and C traffic must be identical: reordering only changes B reuse.
        assert_eq!(r_grp.a_bytes, r_int.a_bytes);
        assert_eq!(r_grp.c_bytes, r_int.c_bytes);
    }

    #[test]
    fn more_pes_do_not_change_traffic_accounting_totals() {
        let a = grouped(128, 4, 8, true);
        let b = dense_b(32, 32);
        let mut one_pe = configs::gamma();
        one_pe.num_pes = 1;
        let r1 = simulate_spgemm(&a, &b, &one_pe).unwrap();
        let rn = simulate_spgemm(&a, &b, &configs::gamma()).unwrap();
        assert_eq!(r1.macs, rn.macs);
        assert_eq!(r1.a_bytes, rn.a_bytes);
        assert_eq!(r1.c_bytes, rn.c_bytes);
        // Single PE has a longer critical path.
        assert!(r1.max_pe_cycles >= rn.max_pe_cycles);
    }

    #[test]
    fn engine_cache_stats_match_scheduled_stream_replay() {
        // The analytical reuse profile and the engine must see the same B-row
        // stream: replaying `scheduled_b_row_stream` through an identical
        // cache reproduces the engine's hit/miss counts exactly.
        let a = grouped(96, 4, 8, true);
        let b = dense_b(32, 16);
        for cfg in [configs::gamma(), configs::flexagon()] {
            let report = simulate_spgemm(&a, &b, &cfg).unwrap();

            let mut row_first_line = Vec::with_capacity(b.nrows() + 1);
            let mut next_line = 0u64;
            row_first_line.push(0u64);
            for r in 0..b.nrows() {
                let bytes = b.row_nnz(r) as u64 * cfg.elem_bytes as u64;
                next_line += bytes.div_ceil(cfg.line_bytes as u64);
                row_first_line.push(next_line);
            }
            let mut cache = LruCache::new(cfg.num_sets(), cfg.ways);
            for k in bootes_sparse::schedule::scheduled_b_row_stream(&a, cfg.num_pes) {
                for line in row_first_line[k]..row_first_line[k + 1] {
                    cache.access(line);
                }
            }
            assert_eq!(
                (cache.hits(), cache.misses()),
                (report.cache_hits, report.cache_misses),
                "config {}",
                cfg.name
            );
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::zeros(4, 5);
        let b = CsrMatrix::zeros(4, 5);
        assert!(simulate_spgemm(&a, &b, &configs::gamma()).is_err());
    }

    #[test]
    fn empty_matrices_are_fine() {
        let a = CsrMatrix::zeros(0, 0);
        let r = simulate_spgemm(&a, &a, &configs::flexagon()).unwrap();
        assert_eq!(r.macs, 0);
        assert_eq!(r.b_bytes, 0);
        let a = CsrMatrix::zeros(10, 10);
        let r = simulate_spgemm(&a, &a, &configs::flexagon()).unwrap();
        assert_eq!(r.cache_misses, 0);
    }

    #[test]
    fn symbolic_nnz_matches_real_product() {
        let a = grouped(40, 4, 6, true);
        let b = dense_b(24, 10);
        let c = ops::spgemm(&a, &b).unwrap();
        assert_eq!(symbolic_nnz(&a, &b), c.nnz() as u64);
    }

    #[test]
    fn cycles_cover_both_bottlenecks() {
        let a = grouped(100, 2, 16, true);
        let b = dense_b(32, 128);
        let r = simulate_spgemm(&a, &b, &configs::flexagon()).unwrap();
        assert!(r.cycles >= r.dram_cycles);
        assert!(r.cycles >= r.max_pe_cycles);
        assert_eq!(r.cycles, r.dram_cycles.max(r.max_pe_cycles));
    }
}
