//! Off-chip traffic and timing reports.

use serde::{Deserialize, Serialize};

/// Result of simulating one SpGEMM on one accelerator.
///
/// Traffic is split per operand exactly as in the paper's Figure 4: reads of
/// `A` (green), reads of `B` (red) and writes of `C` (blue), all in bytes of
/// off-chip (DRAM) transfer. The *compulsory* fields hold the traffic an
/// infinite cache would incur — reading each input once and writing the
/// output once — which is the normalization baseline of Figure 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficReport {
    /// Accelerator the run was simulated on.
    pub accelerator: String,
    /// Off-chip bytes read for operand `A` (streamed once).
    pub a_bytes: u64,
    /// Off-chip bytes read for operand `B` (through the cache).
    pub b_bytes: u64,
    /// Off-chip bytes written for the output `C` (streamed once).
    pub c_bytes: u64,
    /// Compulsory bytes for `A` (its size in memory).
    pub compulsory_a: u64,
    /// Compulsory bytes for `B`.
    pub compulsory_b: u64,
    /// Compulsory bytes for `C`.
    pub compulsory_c: u64,
    /// Cache hits while fetching `B` lines.
    pub cache_hits: u64,
    /// Cache misses while fetching `B` lines.
    pub cache_misses: u64,
    /// Scalar multiply-accumulates performed.
    pub macs: u64,
    /// Simulated execution cycles (roofline of compute and DRAM time,
    /// including load imbalance across PEs).
    pub cycles: u64,
    /// Cycles the DRAM interface was the bottleneck.
    pub dram_cycles: u64,
    /// Compute cycles of the busiest PE.
    pub max_pe_cycles: u64,
}

impl TrafficReport {
    /// Total off-chip traffic in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.a_bytes + self.b_bytes + self.c_bytes
    }

    /// Total compulsory traffic in bytes.
    pub fn compulsory_bytes(&self) -> u64 {
        self.compulsory_a + self.compulsory_b + self.compulsory_c
    }

    /// Total traffic normalized to compulsory traffic (Figure 4's y-axis).
    /// Returns 0.0 when there is no compulsory traffic (empty operands).
    pub fn normalized_traffic(&self) -> f64 {
        let comp = self.compulsory_bytes();
        if comp == 0 {
            0.0
        } else {
            self.total_bytes() as f64 / comp as f64
        }
    }

    /// Cache hit rate on `B` accesses (0.0 when `B` was never accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Simulated execution time in seconds at the given clock.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.cycles as f64 / clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrafficReport {
        TrafficReport {
            accelerator: "test".into(),
            a_bytes: 100,
            b_bytes: 400,
            c_bytes: 60,
            compulsory_a: 100,
            compulsory_b: 200,
            compulsory_c: 60,
            cache_hits: 30,
            cache_misses: 10,
            macs: 1000,
            cycles: 5000,
            dram_cycles: 4000,
            max_pe_cycles: 3000,
        }
    }

    #[test]
    fn totals_and_normalization() {
        let r = sample();
        assert_eq!(r.total_bytes(), 560);
        assert_eq!(r.compulsory_bytes(), 360);
        assert!((r.normalized_traffic() - 560.0 / 360.0).abs() < 1e-12);
        assert!((r.hit_rate() - 0.75).abs() < 1e-12);
        assert!((r.seconds(1e9) - 5e-6).abs() < 1e-18);
    }

    #[test]
    fn zero_compulsory_is_safe() {
        let mut r = sample();
        r.compulsory_a = 0;
        r.compulsory_b = 0;
        r.compulsory_c = 0;
        assert_eq!(r.normalized_traffic(), 0.0);
        r.cache_hits = 0;
        r.cache_misses = 0;
        assert_eq!(r.hit_rate(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<TrafficReport>(&json).unwrap(), r);
    }
}
