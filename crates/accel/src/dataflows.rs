//! Inner-product and outer-product dataflow engines.
//!
//! The row-wise engine ([`crate::engine::simulate_spgemm`]) is the paper's
//! deployment target; these two siblings simulate the alternative dataflows
//! of §2.1 / Table 1 so the trade-offs can be *measured* rather than only
//! counted analytically:
//!
//! - **inner product** ([`simulate_inner`]): every output position `(i, j)`
//!   intersects row `A_i` with column `B_:,j`; columns of `B` stream through
//!   the shared cache, so `B` is heavily over-fetched and index
//!   intersections dominate compute.
//! - **outer product** ([`simulate_outer`]): column `k` of `A` pairs with
//!   row `k` of `B`; inputs are read exactly once, but every partial product
//!   spills to DRAM and is read back by the merge phase, so partial-sum
//!   traffic dominates.

use bootes_sparse::{CsrMatrix, SparseError};

use crate::cache::LruCache;
use crate::configs::AcceleratorConfig;
use crate::error::AccelError;
use crate::report::TrafficReport;

const PTR_BYTES: u64 = 4;

fn check(a: &CsrMatrix, b: &CsrMatrix, cfg: &AcceleratorConfig) -> Result<(), AccelError> {
    cfg.validate()?;
    if a.ncols() != b.nrows() {
        return Err(AccelError::Sparse(SparseError::DimensionMismatch {
            left: a.shape(),
            right: b.shape(),
        }));
    }
    Ok(())
}

fn stream_bytes(nnz: usize, rows: usize, cfg: &AcceleratorConfig) -> u64 {
    nnz as u64 * cfg.elem_bytes as u64 + (rows as u64 + 1) * PTR_BYTES
}

/// Simulates the **inner-product** dataflow: `C[i,j] = A_i · B_:,j` with the
/// columns of `B` fetched through the shared cache.
///
/// # Errors
///
/// Same conditions as [`crate::engine::simulate_spgemm`].
///
/// Note: the inner product visits all `M·N` output positions; use small
/// operands (the Table-1 harness does).
pub fn simulate_inner(
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &AcceleratorConfig,
) -> Result<TrafficReport, AccelError> {
    check(a, b, cfg)?;
    let b_csc = b.to_csc();

    // Column j of B occupies a contiguous, column-aligned line range.
    let mut col_first_line = Vec::with_capacity(b.ncols() + 1);
    let mut next_line = 0u64;
    col_first_line.push(0u64);
    for j in 0..b.ncols() {
        let bytes = b_csc.col_nnz(j) as u64 * cfg.elem_bytes as u64;
        next_line += bytes.div_ceil(cfg.line_bytes as u64);
        col_first_line.push(next_line);
    }

    let mut cache = LruCache::new(cfg.num_sets(), cfg.ways);
    let mut macs = 0u64;
    let mut nnz_c = 0u64;
    let mut pe_cycles = vec![0u64; cfg.num_pes];

    for i in 0..a.nrows() {
        let pe = i % cfg.num_pes;
        let (acols, avals) = a.row(i);
        pe_cycles[pe] += 1;
        for j in 0..b.ncols() {
            let (brows, bvals) = b_csc.col(j);
            for line in col_first_line[j]..col_first_line[j + 1] {
                cache.access(line);
            }
            // Merge-intersect the sorted index lists; the intersection cost
            // is charged to the PE's cycle count.
            pe_cycles[pe] += (acols.len() + brows.len()) as u64;
            let mut p = 0;
            let mut q = 0;
            let mut acc = 0.0;
            while p < acols.len() && q < brows.len() {
                match acols[p].cmp(&brows[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        acc += avals[p] * bvals[q];
                        macs += 1;
                        p += 1;
                        q += 1;
                    }
                }
            }
            if acc != 0.0 {
                nnz_c += 1;
            }
        }
    }

    let a_bytes = stream_bytes(a.nnz(), a.nrows(), cfg);
    let compulsory_b = stream_bytes(b.nnz(), b.nrows(), cfg);
    let c_bytes = nnz_c * cfg.elem_bytes as u64 + (a.nrows() as u64 + 1) * PTR_BYTES;
    let b_bytes = cache.misses() * cfg.line_bytes as u64;
    let total = a_bytes + b_bytes + c_bytes;
    let dram_cycles = (total as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
    let max_pe_cycles = pe_cycles.iter().copied().max().unwrap_or(0);
    Ok(TrafficReport {
        accelerator: format!("{}-inner", cfg.name),
        a_bytes,
        b_bytes,
        c_bytes,
        compulsory_a: a_bytes,
        compulsory_b,
        compulsory_c: c_bytes,
        cache_hits: cache.hits(),
        cache_misses: cache.misses(),
        macs,
        cycles: dram_cycles.max(max_pe_cycles),
        dram_cycles,
        max_pe_cycles,
    })
}

/// Simulates the **outer-product** dataflow: for every `k`, the cross
/// product of column `A_:,k` and row `B_k` generates partial sums that spill
/// to DRAM and are read back once by the merge phase.
///
/// # Errors
///
/// Same conditions as [`crate::engine::simulate_spgemm`].
pub fn simulate_outer(
    a: &CsrMatrix,
    b: &CsrMatrix,
    cfg: &AcceleratorConfig,
) -> Result<TrafficReport, AccelError> {
    check(a, b, cfg)?;
    let a_csc = a.to_csc();

    let mut macs = 0u64;
    let mut psum_count = 0u64;
    let mut pe_cycles = vec![0u64; cfg.num_pes];
    for k in 0..a.ncols() {
        let pe = k % cfg.num_pes;
        let products = a_csc.col_nnz(k) as u64 * b.row_nnz(k) as u64;
        macs += products;
        psum_count += products;
        pe_cycles[pe] += products.max(1);
    }
    // Merge phase: read every psum back and reduce; one compare-add each.
    let nnz_c = crate::engine::symbolic_nnz(a, b);
    for (pe, cycles) in pe_cycles.iter_mut().enumerate() {
        // Merge work distributed evenly, charged after generation.
        let share = psum_count / cfg.num_pes as u64;
        let extra = u64::from((pe as u64) < psum_count % cfg.num_pes as u64);
        *cycles += share + extra;
    }

    let a_bytes = stream_bytes(a.nnz(), a.nrows(), cfg);
    let compulsory_b = stream_bytes(b.nnz(), b.nrows(), cfg);
    // B streamed exactly once: its off-chip traffic equals its size.
    let b_bytes = compulsory_b;
    let psum_bytes = psum_count * cfg.elem_bytes as u64;
    let c_bytes =
        2 * psum_bytes + nnz_c * cfg.elem_bytes as u64 + (a.nrows() as u64 + 1) * PTR_BYTES;
    let total = a_bytes + b_bytes + c_bytes;
    let dram_cycles = (total as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
    let max_pe_cycles = pe_cycles.iter().copied().max().unwrap_or(0);
    Ok(TrafficReport {
        accelerator: format!("{}-outer", cfg.name),
        a_bytes,
        b_bytes,
        c_bytes,
        compulsory_a: a_bytes,
        compulsory_b,
        compulsory_c: nnz_c * cfg.elem_bytes as u64 + (a.nrows() as u64 + 1) * PTR_BYTES,
        cache_hits: 0,
        cache_misses: 0,
        macs,
        cycles: dram_cycles.max(max_pe_cycles),
        dram_cycles,
        max_pe_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;
    use crate::engine::simulate_spgemm;
    use bootes_sparse::CooMatrix;

    fn random_sparse(n: usize, per_row: usize, seed: u64) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        let mut state = seed;
        for r in 0..n {
            for _ in 0..per_row {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                coo.push(r, ((state >> 33) % n as u64) as usize, 1.0).ok();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn inner_overfetches_b_relative_to_row_wise() {
        let a = random_sparse(96, 6, 1);
        let cfg = {
            let mut c = configs::flexagon();
            c.cache_bytes = 4096;
            c
        };
        let inner = simulate_inner(&a, &a, &cfg).unwrap();
        let row = simulate_spgemm(&a, &a, &cfg).unwrap();
        assert!(
            inner.b_bytes > row.b_bytes,
            "inner {} <= row-wise {}",
            inner.b_bytes,
            row.b_bytes
        );
    }

    #[test]
    fn outer_reads_inputs_once_but_spills_psums() {
        let a = random_sparse(96, 6, 2);
        let cfg = configs::flexagon();
        let outer = simulate_outer(&a, &a, &cfg).unwrap();
        let row = simulate_spgemm(&a, &a, &cfg).unwrap();
        // Inputs exactly once.
        assert_eq!(outer.b_bytes, outer.compulsory_b);
        // Output-side traffic (psum spill + merge) dominates row-wise's C.
        assert!(outer.c_bytes > row.c_bytes);
        assert_eq!(outer.macs, row.macs);
    }

    #[test]
    fn all_dataflows_agree_on_compute_volume() {
        let a = random_sparse(64, 5, 3);
        let cfg = configs::gamma();
        let inner = simulate_inner(&a, &a, &cfg).unwrap();
        let outer = simulate_outer(&a, &a, &cfg).unwrap();
        let row = simulate_spgemm(&a, &a, &cfg).unwrap();
        assert_eq!(inner.macs, outer.macs);
        assert_eq!(outer.macs, row.macs);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = CsrMatrix::zeros(4, 5);
        let b = CsrMatrix::zeros(4, 5);
        let cfg = configs::gamma();
        assert!(simulate_inner(&a, &b, &cfg).is_err());
        assert!(simulate_outer(&a, &b, &cfg).is_err());
    }

    #[test]
    fn empty_operands() {
        let a = CsrMatrix::zeros(8, 8);
        let cfg = configs::trapezoid();
        let inner = simulate_inner(&a, &a, &cfg).unwrap();
        assert_eq!(inner.macs, 0);
        let outer = simulate_outer(&a, &a, &cfg).unwrap();
        assert_eq!(outer.macs, 0);
    }
}
