//! Set-associative LRU cache model.
//!
//! Models the shared on-chip buffer that holds rows of `B`. Addresses are
//! abstract line numbers; the engine maps each row of `B` to a contiguous
//! line range. True LRU replacement within each set.

/// A set-associative cache with true-LRU replacement.
///
/// # Example
///
/// ```
/// use bootes_accel::LruCache;
///
/// let mut c = LruCache::new(2, 1); // 2 sets, direct-mapped
/// assert!(!c.access(0)); // miss
/// assert!(c.access(0));  // hit
/// assert!(!c.access(2)); // maps to set 0, evicts line 0
/// assert!(!c.access(0)); // miss again
/// ```
#[derive(Debug, Clone)]
pub struct LruCache {
    sets: Vec<Vec<CacheLine>>,
    ways: usize,
    tick: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy)]
struct CacheLine {
    addr: u64,
    last_used: u64,
}

impl LruCache {
    /// Creates a cache with `num_sets` sets of `ways` lines each.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets == 0` or `ways == 0`.
    pub fn new(num_sets: usize, ways: usize) -> Self {
        assert!(num_sets > 0, "cache needs at least one set");
        assert!(ways > 0, "cache needs at least one way");
        LruCache {
            sets: vec![Vec::with_capacity(ways); num_sets],
            ways,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses line `addr`, returning `true` on a hit. On a miss the line is
    /// installed, evicting the least-recently-used line of its set if full.
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let set_idx = (addr % self.sets.len() as u64) as usize;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.addr == addr) {
            line.last_used = self.tick;
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if set.len() < self.ways {
            set.push(CacheLine {
                addr,
                last_used: self.tick,
            });
        } else {
            let victim = set
                .iter_mut()
                .min_by_key(|l| l.last_used)
                .expect("set is full, hence non-empty");
            *victim = CacheLine {
                addr,
                last_used: self.tick,
            };
        }
        false
    }

    /// Total hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Total line capacity.
    pub fn capacity_lines(&self) -> usize {
        self.sets.len() * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_install() {
        let mut c = LruCache::new(4, 2);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // Direct set: addresses 0, 4, 8 all map to set 0 of a 4-set cache.
        let mut c = LruCache::new(4, 2);
        c.access(0);
        c.access(4);
        c.access(0); // 0 is now MRU; 4 is LRU
        c.access(8); // evicts 4
        assert!(c.access(0), "0 must still be resident");
        assert!(!c.access(4), "4 must have been evicted");
    }

    #[test]
    fn sets_are_independent() {
        let mut c = LruCache::new(2, 1);
        c.access(0); // set 0
        c.access(1); // set 1
        assert!(c.access(0));
        assert!(c.access(1));
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = LruCache::new(8, 4); // 32 lines
        for round in 0..3 {
            for addr in 0..32u64 {
                let hit = c.access(addr);
                if round > 0 {
                    assert!(hit, "addr {addr} missed in round {round}");
                }
            }
        }
        assert_eq!(c.resident_lines(), 32);
        assert_eq!(c.capacity_lines(), 32);
    }

    #[test]
    fn working_set_beyond_capacity_thrashes() {
        let mut c = LruCache::new(2, 2); // 4 lines
                                         // Cyclic sweep over 8 lines with LRU: every access misses.
        for _ in 0..4 {
            for addr in 0..8u64 {
                c.access(addr);
            }
        }
        assert_eq!(c.hits(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = LruCache::new(0, 1);
    }
}
