//! MinHash locality-sensitive hashing over row column-supports.
//!
//! The Hier baseline (Algorithm 3) avoids an exhaustive pairwise similarity
//! matrix by MinHash + banding: each row's column set is summarized by
//! `siglen` minimum hash values; the signature is cut into bands of `bsize`
//! rows, and two rows become a *candidate pair* whenever any band collides.
//! The collision probability of a band is `jaccard^bsize`, so similar rows
//! collide with high probability while dissimilar ones rarely do.

use std::collections::HashMap;

use bootes_sparse::CsrMatrix;

/// MinHash signatures for every row of a matrix.
#[derive(Debug, Clone)]
pub struct MinHashSignatures {
    siglen: usize,
    /// Row-major `nrows x siglen` signature matrix.
    sig: Vec<u64>,
    nrows: usize,
}

/// A large Mersenne prime used as the hash modulus.
const PRIME: u64 = (1 << 61) - 1;

fn hash_params(siglen: usize, seed: u64) -> Vec<(u64, u64)> {
    // Deterministic splitmix64 stream for the (a, b) pairs.
    let mut state = seed;
    let mut next = || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..siglen)
        .map(|_| (next() % (PRIME - 1) + 1, next() % PRIME))
        .collect()
}

impl MinHashSignatures {
    /// Computes `siglen` MinHash values per row of `a`.
    ///
    /// Empty rows receive the all-`u64::MAX` signature, which never collides
    /// with a non-empty row's bands (their band hashes are segregated).
    pub fn compute(a: &CsrMatrix, siglen: usize, seed: u64) -> Self {
        let params = hash_params(siglen, seed);
        let nrows = a.nrows();
        let mut sig = vec![u64::MAX; nrows * siglen];
        for r in 0..nrows {
            let (cols, _) = a.row(r);
            let row_sig = &mut sig[r * siglen..(r + 1) * siglen];
            for &c in cols {
                for (s, &(ha, hb)) in row_sig.iter_mut().zip(&params) {
                    let h = (ha.wrapping_mul(c as u64 + 1).wrapping_add(hb)) % PRIME;
                    if h < *s {
                        *s = h;
                    }
                }
            }
        }
        MinHashSignatures { siglen, sig, nrows }
    }

    /// The signature of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows`.
    pub fn row(&self, r: usize) -> &[u64] {
        &self.sig[r * self.siglen..(r + 1) * self.siglen]
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Signature length.
    pub fn siglen(&self) -> usize {
        self.siglen
    }

    /// Estimated Jaccard similarity between rows `i` and `j`: the fraction of
    /// matching signature positions.
    pub fn estimate_jaccard(&self, i: usize, j: usize) -> f64 {
        if self.siglen == 0 {
            return 0.0;
        }
        let matches = self
            .row(i)
            .iter()
            .zip(self.row(j))
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.siglen as f64
    }

    /// Heap bytes used by the signature matrix (for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.sig.len() * std::mem::size_of::<u64>()
    }

    /// Generates candidate pairs by banding: the signature is split into
    /// bands of `bsize` values and rows sharing any band hash are paired.
    /// Pairs are deduplicated and returned with `i < j`. Rows whose band is
    /// entirely `u64::MAX` (empty rows) are skipped.
    pub fn candidate_pairs(&self, bsize: usize) -> Vec<(usize, usize)> {
        let bsize = bsize.clamp(1, self.siglen.max(1));
        let nbands = if self.siglen == 0 {
            0
        } else {
            self.siglen / bsize
        };
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for band in 0..nbands {
            buckets.clear();
            for r in 0..self.nrows {
                let slice = &self.row(r)[band * bsize..(band + 1) * bsize];
                if slice.iter().all(|&v| v == u64::MAX) {
                    continue;
                }
                // FNV-style fold of the band values.
                let mut h = 0xcbf29ce484222325u64 ^ (band as u64);
                for &v in slice {
                    h = (h ^ v).wrapping_mul(0x100000001b3);
                }
                buckets.entry(h).or_default().push(r);
            }
            for rows in buckets.values() {
                for (ai, &i) in rows.iter().enumerate() {
                    for &j in &rows[ai + 1..] {
                        pairs.push((i.min(j), i.max(j)));
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }
}

/// A whole-matrix MinHash sketch over the set of nonzero *cells*
/// `(row, col)`, using the same Carter–Wegman hash family as the per-row
/// [`MinHashSignatures`] in its one-permutation form: each cell is hashed
/// once and routed to bucket `h % siglen`, which keeps the minimum hash it
/// sees.
///
/// Two sketches computed with the same `(siglen, seed)` estimate the Jaccard
/// similarity of the two matrices' nonzero-cell sets — near 1.0 for a matrix
/// that drifted by a few entries, near 0.0 for unrelated patterns. This is
/// the similarity measure behind the drift donor lookup (`bootes-drift`):
/// cheap to compute (`O(nnz)` — one hash per cell, independent of the
/// signature length), cheap to store (`siglen` words), and comparable
/// without access to either matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixSketch {
    sig: Vec<u64>,
}

impl MatrixSketch {
    /// Computes a `siglen`-bucket one-permutation MinHash sketch of `a`'s
    /// nonzero cells.
    ///
    /// An empty matrix gets the all-`u64::MAX` sketch (every bucket empty),
    /// which estimates similarity 1.0 only against another empty matrix of
    /// any shape (shape filtering is the caller's concern).
    pub fn compute(a: &CsrMatrix, siglen: usize, seed: u64) -> Self {
        let siglen = siglen.max(1);
        let (ha, hb) = hash_params(1, seed)[0];
        let mut sig = vec![u64::MAX; siglen];
        let ncols = a.ncols() as u64;
        for r in 0..a.nrows() {
            let (cols, _) = a.row(r);
            for &c in cols {
                // 1-based flat cell id, same convention as the row hashing
                // above (0 would collapse under `a * x`).
                let cell = (r as u64) * ncols + c as u64 + 1;
                let h = (ha.wrapping_mul(cell).wrapping_add(hb)) % PRIME;
                let bucket = (h % siglen as u64) as usize;
                if h < sig[bucket] {
                    sig[bucket] = h;
                }
            }
        }
        MatrixSketch { sig }
    }

    /// Rebuilds a sketch from stored signature values (e.g. a cached
    /// artifact).
    pub fn from_values(sig: Vec<u64>) -> Self {
        MatrixSketch { sig }
    }

    /// The signature values.
    pub fn values(&self) -> &[u64] {
        &self.sig
    }

    /// Signature length.
    pub fn siglen(&self) -> usize {
        self.sig.len()
    }

    /// Estimated Jaccard similarity of the two nonzero-cell sets: the
    /// fraction of matching positions among buckets that at least one sketch
    /// filled (both-empty buckets carry no evidence and are skipped, so two
    /// sparse but unrelated patterns do not look similar just by leaving the
    /// same buckets empty). Two all-empty sketches — two empty matrices —
    /// estimate 1.0. Sketches of different lengths (different
    /// configurations) are incomparable and estimate 0.
    pub fn estimate_jaccard(&self, other: &MatrixSketch) -> f64 {
        if self.sig.is_empty() || self.sig.len() != other.sig.len() {
            return 0.0;
        }
        let mut matches = 0usize;
        let mut informative = 0usize;
        for (a, b) in self.sig.iter().zip(&other.sig) {
            if *a == u64::MAX && *b == u64::MAX {
                continue;
            }
            informative += 1;
            if a == b {
                matches += 1;
            }
        }
        if informative == 0 {
            return 1.0;
        }
        matches as f64 / informative as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootes_sparse::CooMatrix;

    fn matrix_with_identical_and_disjoint_rows() -> CsrMatrix {
        let mut coo = CooMatrix::new(4, 40);
        // Rows 0 and 1 identical; row 2 disjoint; row 3 empty.
        for c in 0..10 {
            coo.push(0, c, 1.0).unwrap();
            coo.push(1, c, 1.0).unwrap();
            coo.push(2, c + 20, 1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn identical_rows_have_identical_signatures() {
        let a = matrix_with_identical_and_disjoint_rows();
        let s = MinHashSignatures::compute(&a, 16, 1);
        assert_eq!(s.row(0), s.row(1));
        assert_eq!(s.estimate_jaccard(0, 1), 1.0);
    }

    #[test]
    fn disjoint_rows_have_low_estimate() {
        let a = matrix_with_identical_and_disjoint_rows();
        let s = MinHashSignatures::compute(&a, 32, 1);
        assert!(s.estimate_jaccard(0, 2) < 0.3);
    }

    #[test]
    fn candidates_include_identical_pairs_and_skip_empty_rows() {
        let a = matrix_with_identical_and_disjoint_rows();
        let s = MinHashSignatures::compute(&a, 16, 1);
        let pairs = s.candidate_pairs(4);
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.iter().all(|&(i, j)| i != 3 && j != 3));
    }

    #[test]
    fn jaccard_estimate_tracks_truth() {
        // Rows overlapping in half their columns -> jaccard 1/3.
        let mut coo = CooMatrix::new(2, 100);
        for c in 0..50 {
            coo.push(0, c, 1.0).unwrap();
            coo.push(1, c + 25, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let s = MinHashSignatures::compute(&a, 256, 3);
        let est = s.estimate_jaccard(0, 1);
        assert!((est - 1.0 / 3.0).abs() < 0.12, "estimate {est}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = matrix_with_identical_and_disjoint_rows();
        let s1 = MinHashSignatures::compute(&a, 8, 42);
        let s2 = MinHashSignatures::compute(&a, 8, 42);
        assert_eq!(s1.row(0), s2.row(0));
        let s3 = MinHashSignatures::compute(&a, 8, 43);
        assert_ne!(s1.row(0), s3.row(0));
    }

    #[test]
    fn empty_matrix_yields_no_candidates() {
        let a = CsrMatrix::zeros(3, 3);
        let s = MinHashSignatures::compute(&a, 8, 0);
        assert!(s.candidate_pairs(2).is_empty());
    }
}
