//! Preprocessing-cost instrumentation.
//!
//! The paper's Figure 5 reports, per reordering algorithm, the wall-clock
//! preprocessing time and the *memory footprint* — "the minimum memory
//! allocation needed to avoid out-of-memory errors". Profiling a live
//! allocator is nondeterministic, so each algorithm in this workspace
//! explicitly accounts the bytes of its dominant data structures through a
//! [`MemTracker`]: `alloc` when a structure is built, `free` when it is
//! dropped, and the tracker records the high-water mark.

use std::time::Duration;

/// Explicit byte accounting with a high-water mark.
///
/// # Example
///
/// ```
/// use bootes_reorder::MemTracker;
///
/// let mut mem = MemTracker::new();
/// mem.alloc(1000);
/// mem.alloc(500);
/// mem.free(1000);
/// mem.alloc(200);
/// assert_eq!(mem.peak_bytes(), 1500);
/// assert_eq!(mem.current_bytes(), 700);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemTracker {
    current: usize,
    peak: usize,
}

impl MemTracker {
    /// Creates a tracker with zero usage.
    pub fn new() -> Self {
        MemTracker::default()
    }

    /// Records an allocation of `bytes`.
    pub fn alloc(&mut self, bytes: usize) {
        self.current += bytes;
        if self.current > self.peak {
            self.peak = self.current;
        }
    }

    /// Records a release of `bytes`. Saturates at zero rather than
    /// panicking, so mismatched accounting cannot crash a run.
    pub fn free(&mut self, bytes: usize) {
        self.current = self.current.saturating_sub(bytes);
    }

    /// Currently-accounted bytes.
    pub fn current_bytes(&self) -> usize {
        self.current
    }

    /// High-water mark over the tracker's lifetime.
    pub fn peak_bytes(&self) -> usize {
        self.peak
    }
}

/// Preprocessing cost metrics attached to every reordering outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderStats {
    /// Wall-clock time of the reordering computation.
    pub elapsed: Duration,
    /// Peak explicitly-accounted memory footprint in bytes.
    pub peak_bytes: usize,
    /// Algorithm that produced the permutation.
    pub algorithm: String,
    /// When the fallback chain stepped down, the name of the first rung that
    /// failed (e.g. `"bootes"`); `None` for a first-choice success. The
    /// `algorithm` field always names the rung that actually produced the
    /// permutation.
    pub degraded_from: Option<String>,
    /// Why the chain degraded: one `rung: error` clause per failed rung,
    /// joined with `"; "`. `None` for a first-choice success.
    pub degrade_reason: Option<String>,
    /// True when the permutation was served from the preprocessing artifact
    /// cache instead of being recomputed. Cached stats report the (near-zero)
    /// lookup time in `elapsed`, not the original computation time.
    pub cache_hit: bool,
    /// When the exact cache key missed but a near-identical *donor* entry was
    /// found (drift reuse), the donor's pattern hash as 16 lowercase hex
    /// digits. Set both when the donor was respliced and when the drift
    /// threshold forced a fallback recompute; `None` when no donor was
    /// involved.
    pub donor_fingerprint: Option<String>,
    /// Rows re-clustered and spliced into the donor order. Zero when the
    /// permutation was not derived from a donor.
    pub rows_respliced: usize,
    /// True when a donor was found but the rows-changed fraction exceeded the
    /// drift threshold (or the resplice failed), forcing a full recompute.
    pub drift_fallback: bool,
}

impl ReorderStats {
    /// Creates stats for a (non-degraded) algorithm run.
    pub fn new(algorithm: &str, elapsed: Duration, peak_bytes: usize) -> Self {
        ReorderStats {
            elapsed,
            peak_bytes,
            algorithm: algorithm.to_string(),
            degraded_from: None,
            degrade_reason: None,
            cache_hit: false,
            donor_fingerprint: None,
            rows_respliced: 0,
            drift_fallback: false,
        }
    }

    /// True when the permutation came from a fallback rung rather than the
    /// first-choice algorithm.
    pub fn is_degraded(&self) -> bool {
        self.degraded_from.is_some()
    }

    /// Strips run-dependent fields (wall-clock time, the cache-hit marker)
    /// so stats from a cold run, a cache hit, and a disk-reloaded entry can
    /// be compared byte-for-byte through their JSON encodings. Everything
    /// that describes the *computation* — algorithm, footprint, degradation
    /// trail — is preserved.
    pub fn canonical(&self) -> ReorderStats {
        ReorderStats {
            elapsed: Duration::ZERO,
            cache_hit: false,
            ..self.clone()
        }
    }
}

// The vendored serde derive supports no `#[serde(...)]` attributes, so the
// impls are written out: the degradation fields are omitted when `None`
// (keeping non-degraded output byte-identical to the pre-degradation format)
// and default to `None` when absent (so stats written by older versions
// still load).
impl serde::Serialize for ReorderStats {
    fn serialize(&self) -> serde::Value {
        let mut fields = vec![
            ("elapsed".to_string(), self.elapsed.serialize()),
            ("peak_bytes".to_string(), self.peak_bytes.serialize()),
            ("algorithm".to_string(), self.algorithm.serialize()),
        ];
        if let Some(from) = &self.degraded_from {
            fields.push(("degraded_from".to_string(), from.serialize()));
        }
        if let Some(reason) = &self.degrade_reason {
            fields.push(("degrade_reason".to_string(), reason.serialize()));
        }
        // Omitted when false: stats from uncached runs stay byte-identical
        // to the pre-cache format.
        if self.cache_hit {
            fields.push(("cache_hit".to_string(), self.cache_hit.serialize()));
        }
        // Drift fields omitted at their defaults: stats from runs that never
        // touched a donor stay byte-identical to the pre-drift format.
        if let Some(donor) = &self.donor_fingerprint {
            fields.push(("donor_fingerprint".to_string(), donor.serialize()));
        }
        if self.rows_respliced > 0 {
            fields.push((
                "rows_respliced".to_string(),
                self.rows_respliced.serialize(),
            ));
        }
        if self.drift_fallback {
            fields.push((
                "drift_fallback".to_string(),
                self.drift_fallback.serialize(),
            ));
        }
        serde::Value::Object(fields)
    }
}

impl serde::Deserialize for ReorderStats {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        if v.as_object().is_none() {
            return Err(serde::Error::custom("expected object for ReorderStats"));
        }
        let required = |name: &str| {
            v.get(name).ok_or_else(|| {
                serde::Error::custom(format!("missing field {name} in ReorderStats"))
            })
        };
        let optional = |name: &str| -> Result<Option<String>, serde::Error> {
            match v.get(name) {
                None | Some(serde::Value::Null) => Ok(None),
                Some(val) => serde::Deserialize::deserialize(val).map(Some),
            }
        };
        Ok(ReorderStats {
            elapsed: serde::Deserialize::deserialize(required("elapsed")?)?,
            peak_bytes: serde::Deserialize::deserialize(required("peak_bytes")?)?,
            algorithm: serde::Deserialize::deserialize(required("algorithm")?)?,
            degraded_from: optional("degraded_from")?,
            degrade_reason: optional("degrade_reason")?,
            cache_hit: match v.get("cache_hit") {
                None | Some(serde::Value::Null) => false,
                Some(val) => serde::Deserialize::deserialize(val)?,
            },
            donor_fingerprint: optional("donor_fingerprint")?,
            rows_respliced: match v.get("rows_respliced") {
                None | Some(serde::Value::Null) => 0,
                Some(val) => serde::Deserialize::deserialize(val)?,
            },
            drift_fallback: match v.get("drift_fallback") {
                None | Some(serde::Value::Null) => false,
                Some(val) => serde::Deserialize::deserialize(val)?,
            },
        })
    }
}

/// Bytes of a `Vec<T>`'s live payload (capacity is implementation noise the
/// accounting deliberately ignores).
pub fn vec_bytes<T>(v: &[T]) -> usize {
    std::mem::size_of_val(v)
}

/// Times one reorderer run through the observability layer.
///
/// Wraps [`bootes_obs::TimedScope`]: the elapsed time embedded in the
/// resulting [`ReorderStats`] is the same measurement that appears as a span
/// in the profile when profiling is enabled, so `--profile` output and
/// `ReorderStats::elapsed` cannot disagree. Every exit path — including
/// early exits for degenerate inputs — should produce its stats through
/// [`StatsScope::stats`] so the reported footprint always reflects the
/// tracker's actual high-water mark.
pub struct StatsScope {
    scope: bootes_obs::TimedScope,
    algorithm: &'static str,
}

impl StatsScope {
    /// Starts timing a run of `algorithm`, recorded under the span
    /// `span_name` (e.g. `"reorder.gamma"`).
    pub fn start(algorithm: &'static str, span_name: &'static str) -> Self {
        StatsScope {
            scope: bootes_obs::TimedScope::start(span_name),
            algorithm,
        }
    }

    /// Elapsed wall-time since the scope started.
    pub fn elapsed(&self) -> Duration {
        self.scope.elapsed()
    }

    /// Produces the [`ReorderStats`] for this run from the scope's clock and
    /// the tracker's high-water mark.
    pub fn stats(&self, mem: &MemTracker) -> ReorderStats {
        ReorderStats::new(self.algorithm, self.scope.elapsed(), mem.peak_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_records_peak() {
        let mut m = MemTracker::new();
        m.alloc(10);
        m.alloc(20);
        assert_eq!(m.peak_bytes(), 30);
        m.free(25);
        assert_eq!(m.current_bytes(), 5);
        m.alloc(10);
        assert_eq!(m.peak_bytes(), 30);
        m.alloc(100);
        assert_eq!(m.peak_bytes(), 115);
    }

    #[test]
    fn free_saturates() {
        let mut m = MemTracker::new();
        m.alloc(5);
        m.free(100);
        assert_eq!(m.current_bytes(), 0);
        assert_eq!(m.peak_bytes(), 5);
    }

    #[test]
    fn vec_bytes_counts_payload() {
        let v = vec![0u64; 8];
        assert_eq!(vec_bytes(&v), 64);
        let w: Vec<u8> = Vec::new();
        assert_eq!(vec_bytes(&w), 0);
    }

    #[test]
    fn stats_roundtrip_serde() {
        let s = ReorderStats::new("gamma", Duration::from_millis(12), 4096);
        let json = serde_json::to_string(&s).unwrap();
        // Non-degraded stats serialize exactly as before this field existed.
        assert!(!json.contains("degraded_from"), "{json}");
        assert!(!json.contains("cache_hit"), "{json}");
        let back: ReorderStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn cache_hit_marker_roundtrips_and_canonical_strips_it() {
        let mut s = ReorderStats::new("bootes", Duration::from_micros(7), 512);
        s.cache_hit = true;
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"cache_hit\":true"), "{json}");
        let back: ReorderStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);

        let mut cold = ReorderStats::new("bootes", Duration::from_millis(80), 512);
        cold.degraded_from = Some("x".to_string());
        let mut hit = cold.clone();
        hit.elapsed = Duration::from_nanos(900);
        hit.cache_hit = true;
        // Different wall-clock and hit marker, same computation: canonical
        // forms (and their JSON) must agree exactly.
        assert_eq!(cold.canonical(), hit.canonical());
        assert_eq!(
            serde_json::to_string(&cold.canonical()).unwrap(),
            serde_json::to_string(&hit.canonical()).unwrap()
        );
    }

    #[test]
    fn drift_fields_roundtrip_and_are_omitted_at_defaults() {
        // Defaults: serialization is byte-identical to the pre-drift format.
        let plain = ReorderStats::new("bootes", Duration::from_millis(1), 64);
        let json = serde_json::to_string(&plain).unwrap();
        assert!(!json.contains("donor_fingerprint"), "{json}");
        assert!(!json.contains("rows_respliced"), "{json}");
        assert!(!json.contains("drift_fallback"), "{json}");

        // Respliced-from-donor stats roundtrip.
        let mut spliced = plain.clone();
        spliced.donor_fingerprint = Some("00000000000000ab".to_string());
        spliced.rows_respliced = 7;
        let json = serde_json::to_string(&spliced).unwrap();
        assert!(json.contains("\"rows_respliced\":7"), "{json}");
        let back: ReorderStats = serde_json::from_str(&json).unwrap();
        assert_eq!(spliced, back);

        // Fallback-decision stats roundtrip.
        let mut fell_back = plain.clone();
        fell_back.donor_fingerprint = Some("00000000000000cd".to_string());
        fell_back.drift_fallback = true;
        let json = serde_json::to_string(&fell_back).unwrap();
        assert!(json.contains("\"drift_fallback\":true"), "{json}");
        let back: ReorderStats = serde_json::from_str(&json).unwrap();
        assert_eq!(fell_back, back);

        // The drift decision describes the computation, so canonical keeps it.
        assert_eq!(spliced.canonical().rows_respliced, 7);
        assert!(fell_back.canonical().drift_fallback);
    }

    #[test]
    fn degraded_stats_roundtrip_and_old_json_still_parses() {
        let mut s = ReorderStats::new("hier", Duration::from_millis(3), 128);
        s.degraded_from = Some("bootes".to_string());
        s.degrade_reason = Some("bootes: injected fault at lanczos.restart".to_string());
        assert!(s.is_degraded());
        let json = serde_json::to_string(&s).unwrap();
        let back: ReorderStats = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // Stats written before the degradation fields existed must load.
        let old = r#"{"elapsed":{"secs":0,"nanos":5},"peak_bytes":7,"algorithm":"gamma"}"#;
        let parsed: ReorderStats = serde_json::from_str(old).unwrap();
        assert_eq!(parsed.algorithm, "gamma");
        assert!(!parsed.is_degraded());
    }
}
