//! Weighted-graph greedy row reordering (Algorithm 2 of the paper).
//!
//! Builds a graph with one vertex per row and edge weight `w(u, v)` equal to
//! the number of column coordinates rows `u` and `v` share, then walks the
//! graph greedily: from the last placed row, move to the unvisited neighbor
//! with the maximum edge weight (`maxPath`). When the walk dead-ends (no
//! unvisited neighbor), it restarts from the lowest-index unvisited row —
//! the paper leaves this case unspecified; the deterministic restart keeps
//! runs reproducible and is noted in `DESIGN.md`.
//!
//! Complexity is `O(r · q²)` dominated by graph construction (Table 2).

use bootes_sparse::{CsrMatrix, Permutation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

use crate::error::ReorderError;
use crate::metrics::{MemTracker, StatsScope};
use crate::{ReorderOutcome, Reorderer};

/// Configuration for [`GraphReorderer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphConfig {
    /// Seed for the random starting row.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig { seed: 0x6EA4 }
    }
}

/// The FSpGEMM-style graph-based greedy reorderer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphReorderer {
    config: GraphConfig,
}

impl GraphReorderer {
    /// Creates a reorderer with the given configuration.
    pub fn new(config: GraphConfig) -> Self {
        GraphReorderer { config }
    }
}

impl Reorderer for GraphReorderer {
    fn name(&self) -> &'static str {
        "graph"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<ReorderOutcome, ReorderError> {
        let scope = StatsScope::start(self.name(), "reorder.graph");
        let n = a.nrows();
        let mut mem = MemTracker::new();
        if n == 0 {
            return Ok(ReorderOutcome {
                permutation: Permutation::identity(0),
                stats: scope.stats(&mem),
            });
        }

        // Graph construction: for every row u and every column c of u, every
        // other row v sharing c gains edge weight.
        let csc = a.to_csc();
        mem.alloc(csc.heap_bytes());
        let mut adj: Vec<HashMap<usize, u32>> = vec![HashMap::new(); n];
        for (u, edges) in adj.iter_mut().enumerate() {
            for &c in a.row(u).0 {
                for &v in csc.col(c).0 {
                    if v != u {
                        *edges.entry(v).or_insert(0) += 1;
                    }
                }
            }
        }
        let edge_count: usize = adj.iter().map(HashMap::len).sum();
        // HashMap overhead approximated as key + value + one-word bucket cost.
        mem.alloc(
            edge_count
                * (std::mem::size_of::<usize>()
                    + std::mem::size_of::<u32>()
                    + std::mem::size_of::<usize>()),
        );

        let mut visited = vec![false; n];
        mem.alloc(n);
        let mut p: Vec<usize> = Vec::with_capacity(n);

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut current = rng.random_range(0..n);
        visited[current] = true;
        p.push(current);
        // Cursor for the deterministic dead-end restart scan.
        let mut scan = 0usize;

        for _ in 1..n {
            // maxPath: highest-weight unvisited neighbor; ties toward the
            // smaller row index for determinism.
            let next = adj[current]
                .iter()
                .filter(|(&v, _)| !visited[v])
                .max_by_key(|(&v, &w)| (w, std::cmp::Reverse(v)))
                .map(|(&v, _)| v);
            let next = match next {
                Some(v) => v,
                None => {
                    while visited[scan] {
                        scan += 1;
                    }
                    scan
                }
            };
            visited[next] = true;
            p.push(next);
            current = next;
        }
        mem.alloc(n * std::mem::size_of::<usize>());

        let permutation = Permutation::try_new(p)?;
        Ok(ReorderOutcome {
            permutation,
            stats: scope.stats(&mem),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootes_sparse::CooMatrix;

    fn interleaved(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, 20);
        for r in 0..n {
            let base = if r % 2 == 0 { 0 } else { 10 };
            for c in base..base + 4 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn nonempty_matrices_report_nonzero_footprint() {
        // Regression: tiny inputs must still report the tracker's actual
        // high-water mark, not a hardcoded zero.
        for n in [1usize, 2, 3] {
            let out = GraphReorderer::default()
                .reorder(&CsrMatrix::identity(n))
                .unwrap();
            assert!(out.stats.peak_bytes > 0, "n={n} reported peak_bytes == 0");
        }
    }

    #[test]
    fn valid_permutation_and_grouping() {
        let a = interleaved(40);
        let out = GraphReorderer::default().reorder(&a).unwrap();
        let p = out.permutation.as_slice();
        let same_group = p.windows(2).filter(|w| (w[0] % 2) == (w[1] % 2)).count();
        // The greedy walk stays inside one clique until it is exhausted, so
        // nearly all adjacencies are same-group.
        assert!(same_group >= 37, "only {same_group} same-group adjacencies");
    }

    #[test]
    fn deterministic() {
        let a = interleaved(24);
        let r = GraphReorderer::default();
        assert_eq!(
            r.reorder(&a).unwrap().permutation,
            r.reorder(&a).unwrap().permutation
        );
    }

    #[test]
    fn disconnected_rows_are_still_placed() {
        // Rows 0-2 share columns; rows 3-4 are empty (no edges at all).
        let mut coo = CooMatrix::new(5, 4);
        for r in 0..3 {
            coo.push(r, 0, 1.0).unwrap();
        }
        let a = coo.to_csr();
        let out = GraphReorderer::default().reorder(&a).unwrap();
        assert_eq!(out.permutation.len(), 5);
    }

    #[test]
    fn empty_matrix() {
        let out = GraphReorderer::default()
            .reorder(&CsrMatrix::zeros(0, 5))
            .unwrap();
        assert!(out.permutation.is_empty());
    }

    #[test]
    fn memory_accounting_scales_with_edges() {
        let sparse_m = interleaved(20);
        let out_sparse = GraphReorderer::default().reorder(&sparse_m).unwrap();
        // A denser matrix (every row shares one column) has ~n^2 edges.
        let mut coo = CooMatrix::new(20, 2);
        for r in 0..20 {
            coo.push(r, 0, 1.0).unwrap();
        }
        let dense_m = coo.to_csr();
        let out_dense = GraphReorderer::default().reorder(&dense_m).unwrap();
        assert!(out_dense.stats.peak_bytes > out_sparse.stats.peak_bytes);
    }
}
