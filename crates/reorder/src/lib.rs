#![warn(missing_docs)]
//! Row-reordering algorithms for row-wise-product SpGEMM accelerators.
//!
//! This crate implements the three prior-art baselines the Bootes paper
//! compares against (its §2.2), behind a common [`Reorderer`] trait:
//!
//! - [`GammaReorderer`] — Algorithm 1: the windowed greedy priority-queue
//!   reordering shipped with the GAMMA accelerator,
//! - [`GraphReorderer`] — Algorithm 2: the weighted-graph greedy traversal of
//!   the FSpGEMM FPGA framework,
//! - [`HierReorderer`] — Algorithm 3: MinHash-LSH candidate generation plus
//!   hierarchical (union-find) cluster merging,
//! - [`OriginalOrder`] — the identity baseline (no preprocessing).
//!
//! Every run reports a [`ReorderStats`] with wall-clock preprocessing time and
//! an explicitly-accounted peak memory footprint, which back the paper's
//! Figure 5 scalability study. The Bootes spectral reorderer itself lives in
//! the `bootes-core` crate and implements the same trait.
//!
//! # Example
//!
//! ```
//! use bootes_reorder::{GammaReorderer, Reorderer};
//! use bootes_sparse::CsrMatrix;
//!
//! # fn main() -> Result<(), bootes_reorder::ReorderError> {
//! let a = CsrMatrix::identity(8);
//! let out = GammaReorderer::default().reorder(&a)?;
//! assert_eq!(out.permutation.len(), 8);
//! # Ok(())
//! # }
//! ```

pub mod analysis;
pub mod error;
pub mod gamma;
pub mod graph;
pub mod hier;
pub mod lsh;
pub mod metrics;
pub mod original;
pub mod pq;
pub mod unionfind;

pub use analysis::{
    b_reuse_profile, b_reuse_profile_scheduled, reuse_profile_of_stream, ReuseProfile,
};
pub use error::ReorderError;
pub use gamma::GammaReorderer;
pub use graph::GraphReorderer;
pub use hier::HierReorderer;
pub use metrics::{MemTracker, ReorderStats, StatsScope};
pub use original::OriginalOrder;

use bootes_sparse::{CsrMatrix, Permutation};

/// The output of a reordering run: the row permutation plus preprocessing
/// cost metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ReorderOutcome {
    /// Row permutation in the paper's convention (`perm[new] = old`).
    pub permutation: Permutation,
    /// Preprocessing time and memory-footprint accounting.
    pub stats: ReorderStats,
}

/// A row-reordering preprocessing algorithm.
///
/// Implementations permute the rows of the left SpGEMM operand `A` so that
/// rows with similar column coordinates become adjacent, improving reuse of
/// `B`'s rows in the accelerator cache.
pub trait Reorderer {
    /// Short identifier used in reports ("gamma", "graph", "hier", "bootes",
    /// "original").
    fn name(&self) -> &'static str;

    /// Computes a row permutation for `a`.
    ///
    /// # Errors
    ///
    /// Returns a [`ReorderError`] if the algorithm cannot process the matrix
    /// (implementation-specific; all implementations accept empty matrices).
    fn reorder(&self, a: &CsrMatrix) -> Result<ReorderOutcome, ReorderError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_is_object_safe() {
        let algos: Vec<Box<dyn Reorderer>> = vec![
            Box::new(OriginalOrder),
            Box::new(GammaReorderer::default()),
            Box::new(GraphReorderer::default()),
            Box::new(HierReorderer::default()),
        ];
        let a = CsrMatrix::identity(4);
        for algo in &algos {
            let out = algo.reorder(&a).unwrap();
            assert_eq!(out.permutation.len(), 4, "{}", algo.name());
        }
    }
}
