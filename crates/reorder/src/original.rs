//! The no-reordering baseline.

use std::time::Instant;

use bootes_sparse::{CsrMatrix, Permutation};

use crate::error::ReorderError;
use crate::metrics::ReorderStats;
use crate::{ReorderOutcome, Reorderer};

/// Identity "reordering": rows stay in their original order.
///
/// This is the paper's `Original` baseline — the configuration every
/// speedup in Table 4 is measured against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OriginalOrder;

impl Reorderer for OriginalOrder {
    fn name(&self) -> &'static str {
        "original"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<ReorderOutcome, ReorderError> {
        let start = Instant::now();
        let permutation = Permutation::identity(a.nrows());
        Ok(ReorderOutcome {
            stats: ReorderStats::new(self.name(), start.elapsed(), 0),
            permutation,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_permutation() {
        let a = CsrMatrix::identity(5);
        let out = OriginalOrder.reorder(&a).unwrap();
        assert!(out.permutation.is_identity());
        assert_eq!(out.stats.peak_bytes, 0);
        assert_eq!(out.stats.algorithm, "original");
    }

    #[test]
    fn empty_matrix() {
        let out = OriginalOrder.reorder(&CsrMatrix::zeros(0, 0)).unwrap();
        assert!(out.permutation.is_empty());
    }
}
