//! Reuse-distance (LRU stack-distance) analysis of `B`-row accesses.
//!
//! A row-wise SpGEMM touches row `k` of `B` once per nonzero `A[·,k]`, in
//! row order of `A`. The *stack distance* of an access is the number of
//! distinct `B` rows touched since the previous access to the same row; an
//! access hits in a fully-associative LRU cache of capacity `C` rows exactly
//! when its stack distance is `< C`. The histogram of stack distances
//! therefore predicts the hit rate at *every* cache size at once — this is
//! the quantitative version of the paper's Figure 1 argument ("by the time
//! similar column coordinate patterns recur, the corresponding rows of B may
//! no longer reside in the cache") and of Gamma's cache-window `W`.
//!
//! Computed exactly in `O(nnz · log nnz)` with a Fenwick tree over access
//! timestamps.

use bootes_sparse::CsrMatrix;

/// Fenwick (binary indexed) tree over access positions.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at 0-based position `i`.
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i` (0-based inclusive prefix).
    fn prefix(&self, i: usize) -> u32 {
        let mut i = i + 1;
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Histogram of LRU stack distances for the `B`-row access stream of a
/// row-wise SpGEMM with left operand `A`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReuseProfile {
    /// Total `B`-row accesses (= `nnz(A)`).
    pub accesses: u64,
    /// First-touch (cold) accesses — misses at any cache size.
    pub cold: u64,
    /// `histogram[b]` counts re-accesses with stack distance in
    /// `[2^b − 1, 2^(b+1) − 1)`; bucket 0 holds exactly distance 0
    /// (immediate reuse), bucket 1 distances 1–2, bucket 2 distances 3–6, …
    pub histogram: Vec<u64>,
}

impl ReuseProfile {
    /// Predicted hit rate in a fully-associative LRU cache holding
    /// `capacity` B rows: the fraction of accesses with stack distance
    /// strictly below `capacity`.
    pub fn hit_rate_at(&self, capacity: usize) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        let mut hits = 0.0f64;
        for (b, &count) in self.histogram.iter().enumerate() {
            let lo = (1u64 << b) - 1; // smallest distance in bucket
            let hi = (1u64 << (b + 1)) - 1; // exclusive upper bound
            if hi <= capacity as u64 {
                hits += count as f64;
            } else if lo < capacity as u64 {
                // Bucket straddles the capacity; apportion uniformly.
                let frac = (capacity as u64 - lo) as f64 / (hi - lo) as f64;
                hits += count as f64 * frac;
            }
        }
        hits / self.accesses as f64
    }

    /// Mean stack distance of re-accesses (bucket midpoints; `0.0` when
    /// there are none).
    pub fn mean_reuse_distance(&self) -> f64 {
        let reaccesses: u64 = self.histogram.iter().sum();
        if reaccesses == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(b, &c)| {
                let lo = ((1u64 << b) - 1) as f64;
                let hi = ((1u64 << (b + 1)) - 1) as f64;
                c as f64 * 0.5 * (lo + hi)
            })
            .sum();
        weighted / reaccesses as f64
    }
}

/// Computes the exact LRU stack-distance profile of an arbitrary access
/// stream over ids in `0..universe`.
pub fn reuse_profile_of_stream<I: IntoIterator<Item = usize>>(
    stream: I,
    universe: usize,
) -> ReuseProfile {
    let stream: Vec<usize> = stream.into_iter().collect();
    let nnz = stream.len();
    let mut last_seen: Vec<Option<usize>> = vec![None; universe];
    let mut fen = Fenwick::new(nnz.max(1));
    let mut histogram = vec![0u64; 40];
    let mut cold = 0u64;
    for (time, &k) in stream.iter().enumerate() {
        match last_seen[k] {
            None => cold += 1,
            Some(prev) => {
                // Distinct ids touched since prev = live markers after prev.
                let total_live = fen.prefix(nnz.max(1) - 1);
                let upto_prev = fen.prefix(prev);
                let distance = (total_live - upto_prev) as u64;
                // Bucket b covers [2^b - 1, 2^(b+1) - 1): log2(d + 1).
                let shifted = distance + 1;
                let bucket = (63 - shifted.leading_zeros() as usize).min(histogram.len() - 1);
                histogram[bucket] += 1;
                fen.add(prev, -1);
            }
        }
        fen.add(time, 1);
        last_seen[k] = Some(time);
    }
    ReuseProfile {
        accesses: nnz as u64,
        cold,
        histogram,
    }
}

/// Computes the exact LRU stack-distance profile of the `B`-row access
/// stream generated by iterating `A`'s rows *sequentially* in order — the
/// paper's conceptual single-PE picture.
pub fn b_reuse_profile(a: &CsrMatrix) -> ReuseProfile {
    let stream = (0..a.nrows()).flat_map(|r| a.row(r).0.to_vec());
    reuse_profile_of_stream(stream, a.ncols())
}

/// Like [`b_reuse_profile`] but with the access stream interleaved across
/// `num_pes` processing elements exactly as the row-wise engine schedules it
/// (a PE that drains its row takes the next row *in the same step*; each step
/// advances every busy PE by one nonzero). Concurrent PEs working on similar
/// adjacent rows re-touch the same `B` rows within a few steps, so after a
/// good reordering the scheduled profile shows far shorter distances than the
/// sequential one.
///
/// The stream comes from [`bootes_sparse::schedule::scheduled_b_row_stream`],
/// the same scheduler the cycle-accurate engine replays, so the analytical
/// profile and the simulated traffic always agree on PE assignment.
pub fn b_reuse_profile_scheduled(a: &CsrMatrix, num_pes: usize) -> ReuseProfile {
    let stream = bootes_sparse::schedule::scheduled_b_row_stream(a, num_pes);
    reuse_profile_of_stream(stream, a.ncols())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootes_sparse::CooMatrix;

    fn from_rows(ncols: usize, rows: &[&[usize]]) -> CsrMatrix {
        let mut coo = CooMatrix::new(rows.len(), ncols);
        for (r, cols) in rows.iter().enumerate() {
            for &c in *cols {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn cold_only_stream() {
        let a = from_rows(4, &[&[0], &[1], &[2], &[3]]);
        let p = b_reuse_profile(&a);
        assert_eq!(p.accesses, 4);
        assert_eq!(p.cold, 4);
        assert_eq!(p.histogram.iter().sum::<u64>(), 0);
        assert_eq!(p.hit_rate_at(100), 0.0);
    }

    #[test]
    fn immediate_reuse_has_distance_zero() {
        // Stream: 0 0 0 — each re-access has stack distance 0.
        let a = from_rows(1, &[&[0], &[0], &[0]]);
        let p = b_reuse_profile(&a);
        assert_eq!(p.cold, 1);
        assert_eq!(p.histogram[0], 2);
        assert!((p.hit_rate_at(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn interleaved_stream_distances() {
        // Stream: 0 1 0 1 — re-access of 0 has distance 1 (only row 1 in
        // between); same for 1.
        let a = from_rows(2, &[&[0], &[1], &[0], &[1]]);
        let p = b_reuse_profile(&a);
        assert_eq!(p.cold, 2);
        assert_eq!(p.histogram[1], 2); // distances of exactly 1
        assert_eq!(p.hit_rate_at(1), 0.0);
        assert!(p.hit_rate_at(3) > 0.0);
    }

    #[test]
    fn cyclic_sweep_defeats_small_caches() {
        // Stream: (0 1 2 3) x 4 — each re-access has distance 3.
        let rows: Vec<&[usize]> = (0..16).map(|_| &[0usize, 1, 2, 3][..]).collect();
        // Each "row" touches all 4 -> distances 3 after warmup.
        let a = from_rows(4, &rows[..4]);
        let p = b_reuse_profile(&a);
        assert_eq!(p.cold, 4);
        // 12 re-accesses, all at distance 3 -> bucket 2 ([3, 7)).
        assert_eq!(p.histogram[2], 12);
        assert_eq!(p.hit_rate_at(2), 0.0);
        assert!((p.hit_rate_at(7) - 12.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn grouping_reduces_mean_reuse_distance() {
        // Interleaved groups vs contiguous groups of identical rows.
        let mut interleaved_rows: Vec<Vec<usize>> = Vec::new();
        for i in 0..32 {
            let base = if i % 2 == 0 { 0 } else { 8 };
            interleaved_rows.push((base..base + 8).collect());
        }
        let mut grouped_rows = interleaved_rows.clone();
        grouped_rows.sort_by_key(|r| r[0]);
        let view = |rows: &[Vec<usize>]| {
            let slices: Vec<&[usize]> = rows.iter().map(|r| &r[..]).collect();
            b_reuse_profile(&from_rows(16, &slices))
        };
        let pi = view(&interleaved_rows);
        let pg = view(&grouped_rows);
        assert!(
            pg.mean_reuse_distance() < pi.mean_reuse_distance(),
            "grouped {} >= interleaved {}",
            pg.mean_reuse_distance(),
            pi.mean_reuse_distance()
        );
        // At a cache of 8 rows the grouped order hits on every re-access.
        assert!(pg.hit_rate_at(8) > pi.hit_rate_at(8));
    }

    #[test]
    fn hit_rate_is_monotone_in_capacity() {
        let rows: Vec<Vec<usize>> = (0..50)
            .map(|i| vec![(i * 7) % 23, (i * 13) % 23, (i * 5 + 1) % 23])
            .collect();
        let slices: Vec<&[usize]> = rows.iter().map(|r| &r[..]).collect();
        let p = b_reuse_profile(&from_rows(23, &slices));
        let mut prev = 0.0;
        for cap in [1usize, 2, 4, 8, 16, 32, 64] {
            let h = p.hit_rate_at(cap);
            assert!(h + 1e-12 >= prev, "hit rate dropped at capacity {cap}");
            prev = h;
        }
        // Unbounded capacity hits everything except cold misses.
        let expect = (p.accesses - p.cold) as f64 / p.accesses as f64;
        assert!((p.hit_rate_at(1 << 30) - expect).abs() < 1e-9);
    }

    #[test]
    fn scheduled_profile_sees_cross_pe_reuse() {
        // 8 identical rows processed by 8 PEs concurrently: the scheduled
        // stream is 0 1 2 0 1 2 ... with distance 2, while the sequential
        // stream has the same shape here; with distinct groups interleaved
        // by rows, scheduling brings same-column accesses closer.
        let rows: Vec<Vec<usize>> = (0..8).map(|_| vec![0usize, 1, 2]).collect();
        let slices: Vec<&[usize]> = rows.iter().map(|r| &r[..]).collect();
        let a = from_rows(3, &slices);
        let seq = b_reuse_profile(&a);
        let sched = b_reuse_profile_scheduled(&a, 8);
        assert_eq!(seq.accesses, sched.accesses);
        assert_eq!(seq.cold, sched.cold);
        // With 8 PEs in lockstep, column 0 is accessed 8 times in a row:
        // 7 of those have stack distance 0.
        assert!(sched.histogram[0] >= 7, "histogram {:?}", sched.histogram);
    }

    #[test]
    fn scheduled_refill_happens_in_the_same_step() {
        // Rows [0], [1, 2], [1] on 2 PEs. PE0 drains row 0 after step 1 and
        // must take row 2 within step 2, emitting its first access *before*
        // PE1's step-2 access: stream 0 1 1 2, so column 1 is re-accessed at
        // stack distance 0. The old one-step-idle scheduler refilled PE0 a
        // step late, emitting 0 1 2 1 (distance 1) — silently overstating
        // reuse distances relative to the engine's schedule.
        let a = from_rows(3, &[&[0], &[1, 2], &[1]]);
        let profile = b_reuse_profile_scheduled(&a, 2);
        let expected = reuse_profile_of_stream(vec![0, 1, 1, 2], 3);
        assert_eq!(profile, expected);
        assert_eq!(profile.cold, 3);
        assert_eq!(profile.histogram[0], 1); // the back-to-back 1 1
        assert_eq!(profile.histogram[1], 0); // old scheduler put it here
    }

    #[test]
    fn scheduled_stream_matches_engine_scheduler() {
        // Cross-check: the analytical profile is computed from the exact
        // stream the shared engine scheduler emits, for several PE counts.
        let rows: Vec<Vec<usize>> = (0..20)
            .map(|i| (0..(i % 4)).map(|j| (i * 5 + j) % 11).collect())
            .collect();
        let slices: Vec<&[usize]> = rows.iter().map(|r| &r[..]).collect();
        let a = from_rows(11, &slices);
        for pes in [1usize, 2, 3, 8] {
            let stream = bootes_sparse::schedule::scheduled_b_row_stream(&a, pes);
            assert_eq!(
                b_reuse_profile_scheduled(&a, pes),
                reuse_profile_of_stream(stream, a.ncols()),
                "pes = {pes}"
            );
        }
    }

    #[test]
    fn scheduled_with_one_pe_equals_sequential() {
        let rows: Vec<Vec<usize>> = (0..12).map(|i| vec![(i * 3) % 7, (i + 2) % 7]).collect();
        let slices: Vec<&[usize]> = rows.iter().map(|r| &r[..]).collect();
        let a = from_rows(7, &slices);
        assert_eq!(b_reuse_profile(&a), b_reuse_profile_scheduled(&a, 1));
    }

    #[test]
    fn empty_matrix() {
        let p = b_reuse_profile(&CsrMatrix::zeros(5, 5));
        assert_eq!(p.accesses, 0);
        assert_eq!(p.hit_rate_at(10), 0.0);
        assert_eq!(p.mean_reuse_distance(), 0.0);
    }
}
