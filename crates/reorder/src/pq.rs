//! Addressable max-priority queue over dense integer keys.
//!
//! Gamma's reordering (Algorithm 1) needs a queue `Q` supporting
//! `insert(row, priority)`, `incKey`, `decKey`, `remove` and `pop`-max —
//! a classic indexed binary heap. Ties are broken toward the smaller row
//! index so runs are deterministic.

/// Indexed binary max-heap keyed by `usize` ids in `0..capacity`.
///
/// # Example
///
/// ```
/// use bootes_reorder::pq::IndexedPriorityQueue;
///
/// let mut q = IndexedPriorityQueue::new(3);
/// q.insert(0, 0);
/// q.insert(1, 0);
/// q.insert(2, 0);
/// q.inc_key(2);
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), Some(0)); // tie broken toward the smaller id
/// ```
#[derive(Debug, Clone)]
pub struct IndexedPriorityQueue {
    /// heap[i] = id
    heap: Vec<usize>,
    /// pos[id] = Some(index in heap)
    pos: Vec<Option<usize>>,
    /// pri[id]
    pri: Vec<i64>,
}

impl IndexedPriorityQueue {
    /// Creates an empty queue able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        IndexedPriorityQueue {
            heap: Vec::with_capacity(capacity),
            pos: vec![None; capacity],
            pri: vec![0; capacity],
        }
    }

    /// Number of queued ids.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Whether `id` is currently queued.
    ///
    /// # Panics
    ///
    /// Panics if `id >= capacity`.
    pub fn contains(&self, id: usize) -> bool {
        self.pos[id].is_some()
    }

    /// Current priority of `id` (meaningful only while queued).
    ///
    /// # Panics
    ///
    /// Panics if `id >= capacity`.
    pub fn priority(&self, id: usize) -> i64 {
        self.pri[id]
    }

    /// Inserts `id` with the given priority. No-op if already queued.
    ///
    /// # Panics
    ///
    /// Panics if `id >= capacity`.
    pub fn insert(&mut self, id: usize, priority: i64) {
        if self.pos[id].is_some() {
            return;
        }
        self.pri[id] = priority;
        self.pos[id] = Some(self.heap.len());
        self.heap.push(id);
        self.sift_up(self.heap.len() - 1);
    }

    /// Removes and returns the id with the highest priority (ties toward the
    /// smallest id), or `None` if empty.
    pub fn pop(&mut self) -> Option<usize> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        self.remove(top);
        Some(top)
    }

    /// Removes `id` from the queue. No-op if not queued.
    ///
    /// # Panics
    ///
    /// Panics if `id >= capacity`.
    pub fn remove(&mut self, id: usize) {
        let Some(idx) = self.pos[id] else {
            return;
        };
        let last = self.heap.len() - 1;
        self.heap.swap(idx, last);
        if idx != last {
            self.pos[self.heap[idx]] = Some(idx);
        }
        self.heap.pop();
        self.pos[id] = None;
        if idx < self.heap.len() {
            self.sift_down(idx);
            self.sift_up(idx);
        }
    }

    /// Increments the priority of a queued `id` by one. No-op if not queued.
    ///
    /// # Panics
    ///
    /// Panics if `id >= capacity`.
    pub fn inc_key(&mut self, id: usize) {
        if let Some(idx) = self.pos[id] {
            self.pri[id] += 1;
            self.sift_up(idx);
        }
    }

    /// Decrements the priority of a queued `id` by one. No-op if not queued.
    ///
    /// # Panics
    ///
    /// Panics if `id >= capacity`.
    pub fn dec_key(&mut self, id: usize) {
        if let Some(idx) = self.pos[id] {
            self.pri[id] -= 1;
            self.sift_down(idx);
        }
    }

    /// Approximate heap footprint in bytes (for memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.pos.len() * (std::mem::size_of::<Option<usize>>() + std::mem::size_of::<i64>())
            + self.heap.len() * std::mem::size_of::<usize>()
    }

    /// `true` if `a` should sit above `b` in the max-heap.
    fn before(&self, a: usize, b: usize) -> bool {
        (self.pri[a], std::cmp::Reverse(a)) > (self.pri[b], std::cmp::Reverse(b))
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.before(self.heap[idx], self.heap[parent]) {
                self.heap.swap(idx, parent);
                self.pos[self.heap[idx]] = Some(idx);
                self.pos[self.heap[parent]] = Some(parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        loop {
            let l = 2 * idx + 1;
            let r = 2 * idx + 2;
            let mut best = idx;
            if l < self.heap.len() && self.before(self.heap[l], self.heap[best]) {
                best = l;
            }
            if r < self.heap.len() && self.before(self.heap[r], self.heap[best]) {
                best = r;
            }
            if best == idx {
                break;
            }
            self.heap.swap(idx, best);
            self.pos[self.heap[idx]] = Some(idx);
            self.pos[self.heap[best]] = Some(best);
            idx = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pop_order_respects_priority_and_ties() {
        let mut q = IndexedPriorityQueue::new(4);
        for id in 0..4 {
            q.insert(id, 0);
        }
        q.inc_key(3);
        q.inc_key(3);
        q.inc_key(1);
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn remove_keeps_heap_valid() {
        let mut q = IndexedPriorityQueue::new(6);
        for id in 0..6 {
            q.insert(id, id as i64);
        }
        q.remove(5);
        q.remove(0);
        assert!(!q.contains(5));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn dec_key_reorders() {
        let mut q = IndexedPriorityQueue::new(3);
        q.insert(0, 5);
        q.insert(1, 4);
        q.insert(2, 3);
        q.dec_key(0);
        q.dec_key(0);
        q.dec_key(0); // 0 now has priority 2
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut q = IndexedPriorityQueue::new(2);
        q.insert(0, 1);
        q.insert(0, 99);
        assert_eq!(q.priority(0), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn ops_on_missing_ids_are_noops() {
        let mut q = IndexedPriorityQueue::new(3);
        q.inc_key(1);
        q.dec_key(1);
        q.remove(1);
        assert!(q.is_empty());
    }

    #[test]
    fn randomized_against_reference() {
        // Drive the queue with a deterministic op sequence and mirror it in a
        // naive reference implementation.
        let n = 32;
        let mut q = IndexedPriorityQueue::new(n);
        let mut reference: Vec<Option<i64>> = vec![None; n];
        let mut state = 0xDEADBEEFu64;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % m) as usize
        };
        for _ in 0..2000 {
            let id = next(n as u64);
            match next(5) {
                0 => {
                    if reference[id].is_none() {
                        let p = next(10) as i64;
                        q.insert(id, p);
                        reference[id] = Some(p);
                    }
                }
                1 => {
                    if let Some(p) = reference[id].as_mut() {
                        *p += 1;
                    }
                    q.inc_key(id);
                }
                2 => {
                    if let Some(p) = reference[id].as_mut() {
                        *p -= 1;
                    }
                    q.dec_key(id);
                }
                3 => {
                    q.remove(id);
                    reference[id] = None;
                }
                _ => {
                    let expected = reference
                        .iter()
                        .enumerate()
                        .filter_map(|(i, p)| p.map(|p| (p, std::cmp::Reverse(i))))
                        .max()
                        .map(|(_, std::cmp::Reverse(i))| i);
                    assert_eq!(q.pop(), expected);
                    if let Some(i) = expected {
                        reference[i] = None;
                    }
                }
            }
            assert_eq!(q.len(), reference.iter().filter(|p| p.is_some()).count());
        }
    }
}
