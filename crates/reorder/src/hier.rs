//! Hierarchical-clustering row reordering (Algorithm 3 of the paper).
//!
//! Candidate row pairs come from MinHash-LSH ([`crate::lsh`]); a max-heap
//! ordered by exact Jaccard similarity drives agglomerative merging over a
//! union-find forest. A merge that pushes a cluster past `threshold_size`
//! freezes ("deletes") the cluster. When a popped pair's endpoints are no
//! longer representatives, the pair is re-keyed on the current
//! representatives and re-inserted — exactly the paper's lazy re-evaluation.
//! The final permutation lists clusters in order of their smallest member.

use bootes_sparse::{stats, CsrMatrix, Permutation};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::error::ReorderError;
use crate::lsh::MinHashSignatures;
use crate::metrics::{MemTracker, StatsScope};
use crate::unionfind::UnionFind;
use crate::{ReorderOutcome, Reorderer};

/// Configuration for [`HierReorderer`].
///
/// The paper stresses that `siglen` and `bsize` are *fixed across all
/// matrices* — that rigidity is one of Hier's weaknesses Bootes exploits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierConfig {
    /// MinHash signature length.
    pub siglen: usize,
    /// LSH band size (`siglen` must be a multiple for full coverage).
    pub bsize: usize,
    /// Freeze ("delete") clusters that grow beyond this size.
    pub threshold_size: usize,
    /// Seed for the MinHash hash family.
    pub seed: u64,
}

impl Default for HierConfig {
    fn default() -> Self {
        HierConfig {
            siglen: 32,
            bsize: 4,
            threshold_size: 64,
            seed: 0x415E,
        }
    }
}

/// The LSH + hierarchical-clustering reorderer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierReorderer {
    config: HierConfig,
}

impl HierReorderer {
    /// Creates a reorderer with the given configuration.
    pub fn new(config: HierConfig) -> Self {
        HierReorderer { config }
    }
}

/// Heap entry ordered by similarity, ties toward smaller indices.
#[derive(Debug, PartialEq)]
struct Candidate {
    sim: f64,
    i: usize,
    j: usize,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim
            .partial_cmp(&other.sim)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.i.cmp(&self.i))
            .then_with(|| other.j.cmp(&self.j))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Reorderer for HierReorderer {
    fn name(&self) -> &'static str {
        "hier"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<ReorderOutcome, ReorderError> {
        let scope = StatsScope::start(self.name(), "reorder.hier");
        let cfg = &self.config;
        if cfg.siglen == 0 || cfg.bsize == 0 {
            return Err(ReorderError::InvalidConfig(
                "siglen and bsize must be positive".to_string(),
            ));
        }
        if cfg.threshold_size == 0 {
            return Err(ReorderError::InvalidConfig(
                "threshold_size must be positive".to_string(),
            ));
        }
        let n = a.nrows();
        let mut mem = MemTracker::new();
        if n == 0 {
            return Ok(ReorderOutcome {
                permutation: Permutation::identity(0),
                stats: scope.stats(&mem),
            });
        }

        // LSH candidate generation.
        let signatures = MinHashSignatures::compute(a, cfg.siglen, cfg.seed);
        mem.alloc(signatures.heap_bytes());
        let candidates = signatures.candidate_pairs(cfg.bsize);
        mem.alloc(candidates.len() * std::mem::size_of::<(usize, usize)>());
        bootes_guard::check_bytes("hier", mem.current_bytes() as u64)?;

        // Max-heap seeded with exact Jaccard scores of the candidates.
        let mut heap: BinaryHeap<Candidate> = candidates
            .iter()
            .map(|&(i, j)| Candidate {
                sim: stats::jaccard(a, i, j),
                i,
                j,
            })
            .collect();
        mem.alloc(heap.len() * std::mem::size_of::<Candidate>());
        // Pairs already enqueued once on their representatives, to avoid
        // re-inserting the same representative pair repeatedly.
        let mut requeued: HashSet<(usize, usize)> = HashSet::new();

        let mut uf = UnionFind::new(n);
        mem.alloc(n * 3 * std::mem::size_of::<usize>());

        while let Some(Candidate { sim, i, j }) = heap.pop() {
            bootes_guard::checkpoint("hier.merge")?;
            if sim <= 0.0 {
                // Candidates below any similarity cannot guide merging.
                continue;
            }
            let ri = uf.root(i);
            let rj = uf.root(j);
            if ri == rj {
                continue;
            }
            if i == ri && j == rj {
                // Both endpoints are representatives: merge.
                if uf.is_frozen(ri) || uf.is_frozen(rj) {
                    continue;
                }
                if let Some(root) = uf.union(ri, rj) {
                    if uf.set_size(root) > cfg.threshold_size {
                        uf.freeze(root);
                    }
                }
            } else {
                // Stale endpoints: re-key on the current representatives.
                if uf.is_frozen(ri) || uf.is_frozen(rj) {
                    continue;
                }
                let key = (ri.min(rj), ri.max(rj));
                if requeued.insert(key) {
                    heap.push(Candidate {
                        sim: stats::jaccard(a, key.0, key.1),
                        i: key.0,
                        j: key.1,
                    });
                }
            }
        }

        // Emit clusters ordered by smallest member, rows in index order.
        let groups = uf.groups();
        let mut p = Vec::with_capacity(n);
        for g in &groups {
            p.extend_from_slice(g);
        }
        mem.alloc(n * std::mem::size_of::<usize>());

        let permutation = Permutation::try_new(p)?;
        Ok(ReorderOutcome {
            permutation,
            stats: scope.stats(&mem),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootes_sparse::CooMatrix;

    fn interleaved(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, 20);
        for r in 0..n {
            let base = if r % 2 == 0 { 0 } else { 10 };
            for c in base..base + 4 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn nonempty_matrices_report_nonzero_footprint() {
        // Regression: tiny inputs must still report the tracker's actual
        // high-water mark, not a hardcoded zero.
        for n in [1usize, 2, 3] {
            let out = HierReorderer::default()
                .reorder(&CsrMatrix::identity(n))
                .unwrap();
            assert!(out.stats.peak_bytes > 0, "n={n} reported peak_bytes == 0");
        }
    }

    #[test]
    fn clusters_identical_rows() {
        let a = interleaved(30);
        let out = HierReorderer::default().reorder(&a).unwrap();
        let p = out.permutation.as_slice();
        let same_group = p.windows(2).filter(|w| (w[0] % 2) == (w[1] % 2)).count();
        assert!(same_group >= 27, "only {same_group} same-group adjacencies");
    }

    #[test]
    fn threshold_freezes_clusters() {
        let a = interleaved(40);
        let cfg = HierConfig {
            threshold_size: 5,
            ..HierConfig::default()
        };
        let out = HierReorderer::new(cfg).reorder(&a).unwrap();
        assert_eq!(out.permutation.len(), 40);
    }

    #[test]
    fn invalid_config_rejected() {
        let a = interleaved(4);
        for cfg in [
            HierConfig {
                siglen: 0,
                ..HierConfig::default()
            },
            HierConfig {
                bsize: 0,
                ..HierConfig::default()
            },
            HierConfig {
                threshold_size: 0,
                ..HierConfig::default()
            },
        ] {
            assert!(HierReorderer::new(cfg).reorder(&a).is_err());
        }
    }

    #[test]
    fn empty_and_all_empty_rows() {
        let out = HierReorderer::default()
            .reorder(&CsrMatrix::zeros(0, 0))
            .unwrap();
        assert!(out.permutation.is_empty());
        let out = HierReorderer::default()
            .reorder(&CsrMatrix::zeros(5, 5))
            .unwrap();
        assert_eq!(out.permutation.len(), 5);
    }

    #[test]
    fn deterministic() {
        let a = interleaved(20);
        let r = HierReorderer::default();
        assert_eq!(
            r.reorder(&a).unwrap().permutation,
            r.reorder(&a).unwrap().permutation
        );
    }

    #[test]
    fn stats_report_memory() {
        let a = interleaved(20);
        let out = HierReorderer::default().reorder(&a).unwrap();
        assert!(out.stats.peak_bytes > 0);
        assert_eq!(out.stats.algorithm, "hier");
    }
}
