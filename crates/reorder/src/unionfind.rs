//! Union-find (disjoint set) with size tracking and cluster freezing.
//!
//! Backs the Hier baseline (Algorithm 3): clusters are merged
//! smaller-into-larger, and a cluster whose size crosses `threshold_size` is
//! *frozen* — it stops participating in further merges, mirroring the
//! paper's "delete the cluster" step.

/// Disjoint-set forest over `0..n` with union-by-size, path halving, and a
/// per-set frozen flag.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    size: Vec<usize>,
    frozen: Vec<bool>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            size: vec![1; n],
            frozen: vec![false; n],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x` (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x >= len()`.
    pub fn root(&mut self, x: usize) -> usize {
        let mut i = x;
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.root(x);
        self.size[r]
    }

    /// Whether the set containing `x` is frozen.
    pub fn is_frozen(&mut self, x: usize) -> bool {
        let r = self.root(x);
        self.frozen[r]
    }

    /// Freezes the set containing `x`, excluding it from future unions.
    pub fn freeze(&mut self, x: usize) {
        let r = self.root(x);
        self.frozen[r] = true;
    }

    /// Merges the sets containing `a` and `b` (smaller into larger; ties keep
    /// the smaller representative index, matching the paper's representative
    /// selection rule). Returns the new root, or `None` if the sets are equal
    /// or either is frozen.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let ra = self.root(a);
        let rb = self.root(b);
        if ra == rb || self.frozen[ra] || self.frozen[rb] {
            return None;
        }
        let (big, small) = match self.size[ra].cmp(&self.size[rb]) {
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Equal => (ra.min(rb), ra.max(rb)),
        };
        self.parent[small] = big;
        self.size[big] += self.size[small];
        Some(big)
    }

    /// Groups all elements by representative, returning the members of each
    /// set ordered by element index, with the groups ordered by their
    /// smallest member.
    pub fn groups(&mut self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut by_root: Vec<Vec<usize>> = vec![Vec::new(); n];
        for x in 0..n {
            let r = self.root(x);
            by_root[r].push(x);
        }
        by_root.into_iter().filter(|g| !g.is_empty()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_and_root() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(1, 2).is_some());
        assert_eq!(uf.root(0), uf.root(2));
        assert_ne!(uf.root(0), uf.root(3));
        assert_eq!(uf.set_size(2), 3);
        assert!(uf.union(0, 2).is_none());
    }

    #[test]
    fn smaller_merges_into_larger() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(0, 2); // set {0,1,2}
        let r = uf.union(3, 0).unwrap();
        assert_eq!(r, uf.root(1));
        assert_eq!(uf.set_size(3), 4);
    }

    #[test]
    fn equal_size_ties_keep_smaller_representative() {
        let mut uf = UnionFind::new(4);
        uf.union(2, 3);
        uf.union(0, 1);
        let r = uf.union(2, 0).unwrap();
        assert_eq!(r, uf.root(0).min(uf.root(2)));
    }

    #[test]
    fn frozen_sets_do_not_merge() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.freeze(0);
        assert!(uf.is_frozen(1));
        assert!(uf.union(1, 2).is_none());
        assert!(uf.union(2, 3).is_some());
    }

    #[test]
    fn groups_partition_everything() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 3);
        uf.union(4, 5);
        let groups = uf.groups();
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 6);
        assert!(groups.contains(&vec![0, 3]));
        assert!(groups.contains(&vec![4, 5]));
        assert!(groups.contains(&vec![1]));
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert!(uf.groups().is_empty());
    }
}
