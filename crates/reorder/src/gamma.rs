//! GAMMA's windowed greedy row reordering (Algorithm 1 of the paper).
//!
//! A priority queue holds every not-yet-placed row. After placing row
//! `P[i-1]`, every row sharing a column coordinate with it gets its priority
//! bumped; once the placement cursor moves a full cache window `W` past a
//! row, the rows similar to that expired row get their priority dropped
//! again. The next placement is always the maximum-priority row.
//!
//! Complexity is `O(N log N · Q²)` (Table 2): each placed row touches up to
//! `Q` columns, each column up to `Q` rows, and every priority update costs a
//! heap sift.

use bootes_sparse::{CsrMatrix, Permutation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::error::ReorderError;
use crate::metrics::{MemTracker, StatsScope};
use crate::pq::IndexedPriorityQueue;
use crate::{ReorderOutcome, Reorderer};

/// Configuration for [`GammaReorderer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GammaConfig {
    /// Cache window `W`: how many recently placed rows are assumed resident.
    pub window: usize,
    /// Seed for the random starting row.
    pub seed: u64,
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig {
            window: 64,
            seed: 0xA11CE,
        }
    }
}

/// The GAMMA accelerator's row-reordering preprocessing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GammaReorderer {
    config: GammaConfig,
}

impl GammaReorderer {
    /// Creates a reorderer with the given configuration.
    pub fn new(config: GammaConfig) -> Self {
        GammaReorderer { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &GammaConfig {
        &self.config
    }
}

impl Reorderer for GammaReorderer {
    fn name(&self) -> &'static str {
        "gamma"
    }

    fn reorder(&self, a: &CsrMatrix) -> Result<ReorderOutcome, ReorderError> {
        let scope = StatsScope::start(self.name(), "reorder.gamma");
        let n = a.nrows();
        let mut mem = MemTracker::new();
        if n == 0 {
            return Ok(ReorderOutcome {
                permutation: Permutation::identity(0),
                stats: scope.stats(&mem),
            });
        }
        let w = self.config.window.max(1);

        // Column -> rows lookup; Gamma tracks which rows share each column.
        let csc = a.to_csc();
        mem.alloc(csc.heap_bytes());
        bootes_guard::check_bytes("gamma", mem.current_bytes() as u64)?;

        let mut q = IndexedPriorityQueue::new(n);
        for r in 0..n {
            q.insert(r, 0);
        }
        mem.alloc(q.heap_bytes());

        // P is populated during the loop (the paper notes this is why Gamma's
        // footprint peaks higher than its peers).
        let mut p: Vec<usize> = Vec::with_capacity(n);
        mem.alloc(n * std::mem::size_of::<usize>());

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let first = rng.random_range(0..n);
        p.push(first);
        q.remove(first);

        for i in 1..n {
            bootes_guard::checkpoint("gamma.place")?;
            // Boost rows similar to the most recently placed row.
            for &u in a.row(p[i - 1]).0 {
                for &r in csc.col(u).0 {
                    if q.contains(r) {
                        q.inc_key(r);
                    }
                }
            }
            // Expire rows similar to the row that just left the cache window.
            if i > w {
                for &u in a.row(p[i - w - 1]).0 {
                    for &r in csc.col(u).0 {
                        if q.contains(r) {
                            q.dec_key(r);
                        }
                    }
                }
            }
            let next = q.pop().expect("queue holds exactly the unplaced rows");
            p.push(next);
        }

        let permutation = Permutation::try_new(p)?;
        Ok(ReorderOutcome {
            permutation,
            stats: scope.stats(&mem),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootes_sparse::CooMatrix;

    /// Two interleaved groups of rows: even rows share columns 0..4, odd rows
    /// share columns 10..14.
    fn interleaved(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, 20);
        for r in 0..n {
            let base = if r % 2 == 0 { 0 } else { 10 };
            for c in base..base + 4 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn produces_valid_permutation() {
        let a = interleaved(40);
        let out = GammaReorderer::default().reorder(&a).unwrap();
        assert_eq!(out.permutation.len(), 40);
    }

    #[test]
    fn groups_similar_rows_together() {
        let a = interleaved(40);
        let out = GammaReorderer::default().reorder(&a).unwrap();
        // After reordering, adjacent rows should mostly share a group:
        // count adjacent pairs with equal parity of the original index.
        let p = out.permutation.as_slice();
        let same_group = p.windows(2).filter(|w| (w[0] % 2) == (w[1] % 2)).count();
        // With 40 rows in 2 groups an optimal ordering has 38 same-group
        // adjacencies; random would give ~19.5. Gamma must land near optimal.
        assert!(same_group >= 34, "only {same_group} same-group adjacencies");
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let a = interleaved(30);
        let r = GammaReorderer::default();
        assert_eq!(
            r.reorder(&a).unwrap().permutation,
            r.reorder(&a).unwrap().permutation
        );
    }

    #[test]
    fn window_affects_result_metadata() {
        let a = interleaved(30);
        let small = GammaReorderer::new(GammaConfig {
            window: 2,
            ..GammaConfig::default()
        });
        let out = small.reorder(&a).unwrap();
        assert_eq!(out.permutation.len(), 30);
        assert!(out.stats.peak_bytes > 0);
    }

    #[test]
    fn handles_empty_and_tiny_matrices() {
        let out = GammaReorderer::default()
            .reorder(&CsrMatrix::zeros(0, 0))
            .unwrap();
        assert!(out.permutation.is_empty());
        let out = GammaReorderer::default()
            .reorder(&CsrMatrix::identity(1))
            .unwrap();
        assert_eq!(out.permutation.len(), 1);
    }

    #[test]
    fn nonempty_matrices_report_nonzero_footprint() {
        // Regression: tiny inputs must still report the tracker's actual
        // high-water mark, not a hardcoded zero.
        for n in [1usize, 2, 3] {
            let out = GammaReorderer::default()
                .reorder(&CsrMatrix::identity(n))
                .unwrap();
            assert!(out.stats.peak_bytes > 0, "n={n} reported peak_bytes == 0");
        }
    }

    #[test]
    fn handles_empty_rows() {
        let a = CsrMatrix::try_new(3, 3, vec![0, 0, 1, 1], vec![1], vec![1.0]).unwrap();
        let out = GammaReorderer::default().reorder(&a).unwrap();
        assert_eq!(out.permutation.len(), 3);
    }
}
