//! Error type for reordering algorithms.

use std::fmt;

use bootes_sparse::SparseError;

/// Error returned by [`crate::Reorderer::reorder`] implementations.
#[derive(Debug, Clone, PartialEq)]
pub enum ReorderError {
    /// An underlying sparse-matrix operation failed.
    Sparse(SparseError),
    /// An algorithm parameter was invalid (e.g. a zero LSH signature length).
    InvalidConfig(String),
    /// A numerical stage (eigensolve, clustering) failed; the message carries
    /// the inner description.
    Numerical(String),
    /// A guard-layer failure: budget exhaustion at a checkpoint, an injected
    /// fault, or a worker panic isolated by `bootes-par`. The fallback chain
    /// treats this exactly like a numerical failure — step down one rung.
    Guard(bootes_guard::GuardError),
}

impl fmt::Display for ReorderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReorderError::Sparse(e) => write!(f, "sparse operation failed: {e}"),
            ReorderError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ReorderError::Numerical(msg) => write!(f, "numerical stage failed: {msg}"),
            ReorderError::Guard(e) => write!(f, "guard: {e}"),
        }
    }
}

impl std::error::Error for ReorderError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReorderError::Sparse(e) => Some(e),
            ReorderError::Guard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparseError> for ReorderError {
    fn from(e: SparseError) -> Self {
        // Guard failures keep their typed identity across the layer boundary
        // so the fallback chain can report what actually went wrong.
        match e {
            SparseError::Guard(g) => ReorderError::Guard(g),
            other => ReorderError::Sparse(other),
        }
    }
}

impl From<bootes_guard::GuardError> for ReorderError {
    fn from(e: bootes_guard::GuardError) -> Self {
        ReorderError::Guard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error;
        let e = ReorderError::from(SparseError::InvalidPermutation("dup".to_string()));
        assert!(e.to_string().contains("sparse operation failed"));
        assert!(e.source().is_some());
        let e = ReorderError::InvalidConfig("bad".to_string());
        assert!(e.source().is_none());
    }
}
