//! Labeled feature datasets with deterministic splits and class weighting.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::error::ModelError;

/// A labeled dataset: `n` samples of `d` features with integer class labels.
///
/// The paper's dataset holds one row per (matrix, accelerator) pair, with the
/// §3.2 structural features and the label "no reorder" or the best `k`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    feature_names: Vec<String>,
    n_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shape consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidDataset`] if lengths disagree, a feature
    /// row has the wrong width, a label is `>= n_classes`, or a feature is
    /// non-finite.
    pub fn new(
        x: Vec<Vec<f64>>,
        y: Vec<usize>,
        feature_names: Vec<String>,
        n_classes: usize,
    ) -> Result<Self, ModelError> {
        if x.len() != y.len() {
            return Err(ModelError::InvalidDataset(format!(
                "{} feature rows but {} labels",
                x.len(),
                y.len()
            )));
        }
        if n_classes == 0 {
            return Err(ModelError::InvalidDataset(
                "n_classes must be positive".to_string(),
            ));
        }
        let d = feature_names.len();
        for (i, row) in x.iter().enumerate() {
            if row.len() != d {
                return Err(ModelError::InvalidDataset(format!(
                    "sample {i} has {} features, expected {d}",
                    row.len()
                )));
            }
            if let Some(v) = row.iter().find(|v| !v.is_finite()) {
                return Err(ModelError::InvalidDataset(format!(
                    "sample {i} contains non-finite feature {v}"
                )));
            }
        }
        if let Some(&bad) = y.iter().find(|&&c| c >= n_classes) {
            return Err(ModelError::InvalidDataset(format!(
                "label {bad} out of range for {n_classes} classes"
            )));
        }
        Ok(Dataset {
            x,
            y,
            feature_names,
            n_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature names (column headers).
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Feature row of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn features(&self, i: usize) -> &[f64] {
        &self.x[i]
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn label(&self, i: usize) -> usize {
        self.y[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &c in &self.y {
            counts[c] += 1;
        }
        counts
    }

    /// Balanced class weights `n / (k · count_c)` (sklearn's
    /// `class_weight="balanced"`), the paper's fix for the "no reorder"
    /// majority bias (§5.1). Absent classes get weight 0.
    pub fn balanced_class_weights(&self) -> Vec<f64> {
        let counts = self.class_counts();
        let present = counts.iter().filter(|&&c| c > 0).count().max(1);
        counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    0.0
                } else {
                    self.len() as f64 / (present as f64 * c as f64)
                }
            })
            .collect()
    }

    /// Deterministically shuffles and splits into `(train, test)` with
    /// `train_fraction` of samples in the training set (the paper uses 0.7).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if the fraction is outside
    /// `(0, 1]`.
    pub fn split(&self, train_fraction: f64, seed: u64) -> Result<(Dataset, Dataset), ModelError> {
        let fraction_valid = train_fraction > 0.0 && train_fraction <= 1.0;
        if !fraction_valid {
            return Err(ModelError::InvalidConfig(format!(
                "train_fraction {train_fraction} must be in (0, 1]"
            )));
        }
        let mut order: Vec<usize> = (0..self.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        let cut = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = cut.min(self.len());
        let subset = |idx: &[usize]| Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
            n_classes: self.n_classes,
        };
        Ok((subset(&order[..cut]), subset(&order[cut..])))
    }

    /// Builds a bootstrap resample of the same size (for bagging).
    pub fn bootstrap(&self, seed: u64) -> Dataset {
        use rand::RngExt;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.len();
        let idx: Vec<usize> = (0..n).map(|_| rng.random_range(0..n)).collect();
        Dataset {
            x: idx.iter().map(|&i| self.x[i].clone()).collect(),
            y: idx.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
            n_classes: self.n_classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            vec![
                vec![0.0],
                vec![1.0],
                vec![2.0],
                vec![3.0],
                vec![4.0],
                vec![5.0],
            ],
            vec![0, 0, 0, 0, 1, 1],
            vec!["f".into()],
            2,
        )
        .unwrap()
    }

    #[test]
    fn validates_shapes() {
        assert!(Dataset::new(vec![vec![1.0]], vec![0, 1], vec!["f".into()], 2).is_err());
        assert!(Dataset::new(vec![vec![1.0, 2.0]], vec![0], vec!["f".into()], 2).is_err());
        assert!(Dataset::new(vec![vec![1.0]], vec![5], vec!["f".into()], 2).is_err());
        assert!(Dataset::new(vec![vec![f64::NAN]], vec![0], vec!["f".into()], 2).is_err());
        assert!(Dataset::new(vec![], vec![], vec![], 0).is_err());
    }

    #[test]
    fn class_counts_and_weights() {
        let ds = toy();
        assert_eq!(ds.class_counts(), vec![4, 2]);
        let w = ds.balanced_class_weights();
        // n/(k*c): 6/(2*4) = 0.75, 6/(2*2) = 1.5
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert!((w[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn split_partitions_without_overlap() {
        let ds = toy();
        let (tr, te) = ds.split(0.5, 1).unwrap();
        assert_eq!(tr.len() + te.len(), ds.len());
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.n_features(), 1);
    }

    #[test]
    fn split_is_deterministic() {
        let ds = toy();
        let (a, _) = ds.split(0.7, 9).unwrap();
        let (b, _) = ds.split(0.7, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let ds = toy();
        assert!(ds.split(0.0, 0).is_err());
        assert!(ds.split(1.5, 0).is_err());
    }

    #[test]
    fn bootstrap_preserves_shape() {
        let ds = toy();
        let bs = ds.bootstrap(3);
        assert_eq!(bs.len(), ds.len());
        assert_eq!(bs.n_features(), 1);
    }

    #[test]
    fn serde_roundtrip() {
        let ds = toy();
        let json = serde_json::to_string(&ds).unwrap();
        let back: Dataset = serde_json::from_str(&json).unwrap();
        assert_eq!(ds, back);
    }
}
