//! Gradient-boosted decision trees (multiclass softmax boosting).
//!
//! The paper reports trying XGBoost before settling on a single decision
//! tree: boosting "achieved the highest accuracy" but "required considerably
//! more storage" (§3). This module implements the same family of model —
//! Friedman-style gradient boosting with shallow regression trees and a
//! softmax multiclass objective — so the storage-vs-accuracy trade-off can
//! be reproduced (see the `model_comparison` example and `ablations` bench).

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::ModelError;

/// Hyperparameters for [`GradientBoostedTrees::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GbtConfig {
    /// Boosting rounds (each round fits one tree per class).
    pub n_rounds: usize,
    /// Shrinkage (learning rate) applied to every leaf value.
    pub learning_rate: f64,
    /// Maximum depth of each regression tree.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_samples_leaf: usize,
}

impl Default for GbtConfig {
    fn default() -> Self {
        GbtConfig {
            n_rounds: 40,
            learning_rate: 0.2,
            max_depth: 3,
            min_samples_leaf: 2,
        }
    }
}

/// A node of a regression tree (flattened arena).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum RegNode {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A regression tree fitted to per-sample gradients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct RegTree {
    nodes: Vec<RegNode>,
}

impl RegTree {
    fn predict(&self, x: &[f64]) -> f64 {
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                RegNode::Leaf { value } => return *value,
                RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

struct RegBuilder<'a> {
    ds: &'a Dataset,
    residuals: &'a [f64],
    n_classes: f64,
    cfg: &'a GbtConfig,
    nodes: Vec<RegNode>,
}

impl RegBuilder<'_> {
    /// Friedman's leaf value for the multiclass softmax objective:
    /// `(K-1)/K · Σr / Σ|r|(1-|r|)`.
    fn leaf_value(&self, idx_set: &[usize]) -> f64 {
        let num: f64 = idx_set.iter().map(|&i| self.residuals[i]).sum();
        let den: f64 = idx_set
            .iter()
            .map(|&i| {
                let r = self.residuals[i].abs();
                r * (1.0 - r)
            })
            .sum();
        if den.abs() < 1e-10 {
            0.0
        } else {
            (self.n_classes - 1.0) / self.n_classes * num / den
        }
    }

    fn build(&mut self, idx_set: &[usize], depth: usize) -> usize {
        let mean = idx_set.iter().map(|&i| self.residuals[i]).sum::<f64>() / idx_set.len() as f64;
        let sse: f64 = idx_set
            .iter()
            .map(|&i| (self.residuals[i] - mean).powi(2))
            .sum();
        if depth >= self.cfg.max_depth
            || idx_set.len() < 2 * self.cfg.min_samples_leaf
            || sse < 1e-12
        {
            let value = self.leaf_value(idx_set);
            self.nodes.push(RegNode::Leaf { value });
            return self.nodes.len() - 1;
        }
        // Best variance-reduction split.
        let d = self.ds.n_features();
        let mut best: Option<(usize, f64, f64)> = None;
        let mut sorted = idx_set.to_vec();
        for f in 0..d {
            sorted.sort_by(|&a, &b| {
                self.ds.features(a)[f]
                    .partial_cmp(&self.ds.features(b)[f])
                    .expect("finite features")
            });
            let total: f64 = idx_set.iter().map(|&i| self.residuals[i]).sum();
            let mut left_sum = 0.0;
            for pos in 0..sorted.len() - 1 {
                left_sum += self.residuals[sorted[pos]];
                let xv = self.ds.features(sorted[pos])[f];
                let xn = self.ds.features(sorted[pos + 1])[f];
                if xn <= xv {
                    continue;
                }
                let nl = (pos + 1) as f64;
                let nr = (sorted.len() - pos - 1) as f64;
                if (nl as usize) < self.cfg.min_samples_leaf
                    || (nr as usize) < self.cfg.min_samples_leaf
                {
                    continue;
                }
                // Maximizing sum-of-squared-means is equivalent to
                // minimizing child SSE for a fixed parent.
                let score = left_sum * left_sum / nl + (total - left_sum).powi(2) / nr;
                if best.is_none_or(|(_, _, s)| score > s + 1e-15) {
                    best = Some((f, 0.5 * (xv + xn), score));
                }
            }
        }
        match best {
            None => {
                let value = self.leaf_value(idx_set);
                self.nodes.push(RegNode::Leaf { value });
                self.nodes.len() - 1
            }
            Some((feature, threshold, _)) => {
                let (l, r): (Vec<usize>, Vec<usize>) = idx_set
                    .iter()
                    .partition(|&&i| self.ds.features(i)[feature] <= threshold);
                let me = self.nodes.len();
                self.nodes.push(RegNode::Leaf { value: 0.0 });
                let left = self.build(&l, depth + 1);
                let right = self.build(&r, depth + 1);
                self.nodes[me] = RegNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                };
                me
            }
        }
    }
}

/// A gradient-boosted multiclass classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GradientBoostedTrees {
    /// `trees[round][class]`.
    trees: Vec<Vec<RegTree>>,
    learning_rate: f64,
    n_classes: usize,
    n_features: usize,
}

impl GradientBoostedTrees {
    /// Trains a boosted model on `ds`.
    ///
    /// # Errors
    ///
    /// - [`ModelError::InvalidDataset`] if the dataset is empty.
    /// - [`ModelError::InvalidConfig`] if `n_rounds == 0`, the learning rate
    ///   is not in `(0, 1]`, or `max_depth == 0`.
    pub fn fit(ds: &Dataset, cfg: &GbtConfig) -> Result<Self, ModelError> {
        if ds.is_empty() {
            return Err(ModelError::InvalidDataset(
                "cannot train on an empty dataset".to_string(),
            ));
        }
        if cfg.n_rounds == 0 {
            return Err(ModelError::InvalidConfig("n_rounds must be >= 1".into()));
        }
        let lr_valid = cfg.learning_rate > 0.0 && cfg.learning_rate <= 1.0;
        if !lr_valid {
            return Err(ModelError::InvalidConfig(format!(
                "learning_rate {} outside (0, 1]",
                cfg.learning_rate
            )));
        }
        if cfg.max_depth == 0 {
            return Err(ModelError::InvalidConfig("max_depth must be >= 1".into()));
        }
        let n = ds.len();
        let k = ds.n_classes();
        let mut scores = vec![vec![0.0f64; k]; n];
        let mut trees = Vec::with_capacity(cfg.n_rounds);
        let all: Vec<usize> = (0..n).collect();
        let mut residuals = vec![0.0f64; n];
        for _ in 0..cfg.n_rounds {
            let mut round = Vec::with_capacity(k);
            // Softmax probabilities per sample.
            let probs: Vec<Vec<f64>> = scores
                .iter()
                .map(|s| {
                    let mx = s.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                    let exps: Vec<f64> = s.iter().map(|v| (v - mx).exp()).collect();
                    let sum: f64 = exps.iter().sum();
                    exps.iter().map(|e| e / sum).collect()
                })
                .collect();
            for c in 0..k {
                for i in 0..n {
                    let y = if ds.label(i) == c { 1.0 } else { 0.0 };
                    residuals[i] = y - probs[i][c];
                }
                let mut builder = RegBuilder {
                    ds,
                    residuals: &residuals,
                    n_classes: k as f64,
                    cfg,
                    nodes: Vec::new(),
                };
                builder.build(&all, 0);
                let tree = RegTree {
                    nodes: builder.nodes,
                };
                for (i, s) in scores.iter_mut().enumerate() {
                    s[c] += cfg.learning_rate * tree.predict(ds.features(i));
                }
                round.push(tree);
            }
            trees.push(round);
        }
        Ok(GradientBoostedTrees {
            trees,
            learning_rate: cfg.learning_rate,
            n_classes: k,
            n_features: ds.n_features(),
        })
    }

    /// Predicts the class of one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] if `x` has the wrong length.
    pub fn predict(&self, x: &[f64]) -> Result<usize, ModelError> {
        let scores = self.decision_scores(x)?;
        let mut best = 0;
        for (c, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = c;
            }
        }
        Ok(best)
    }

    /// Raw additive scores per class.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] if `x` has the wrong length.
    pub fn decision_scores(&self, x: &[f64]) -> Result<Vec<f64>, ModelError> {
        if x.len() != self.n_features {
            return Err(ModelError::FeatureMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let mut scores = vec![0.0; self.n_classes];
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                scores[c] += self.learning_rate * tree.predict(x);
            }
        }
        Ok(scores)
    }

    /// Number of boosting rounds.
    pub fn n_rounds(&self) -> usize {
        self.trees.len()
    }

    /// Size of the JSON-serialized model in bytes.
    pub fn serialized_size(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for j in 0..4 {
                    x.push(vec![a as f64 + j as f64 * 0.01, b as f64 + j as f64 * 0.01]);
                    y.push((a ^ b) as usize);
                }
            }
        }
        Dataset::new(x, y, vec!["a".into(), "b".into()], 2).unwrap()
    }

    fn three_blobs() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..45 {
            let c = i % 3;
            x.push(vec![
                c as f64 * 5.0 + (i % 4) as f64 * 0.2,
                -(c as f64) * 3.0,
            ]);
            y.push(c);
        }
        Dataset::new(x, y, vec!["u".into(), "v".into()], 3).unwrap()
    }

    #[test]
    fn learns_xor() {
        let t = GradientBoostedTrees::fit(&xor_dataset(), &GbtConfig::default()).unwrap();
        assert_eq!(t.predict(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(t.predict(&[1.0, 0.0]).unwrap(), 1);
        assert_eq!(t.predict(&[0.0, 1.0]).unwrap(), 1);
        assert_eq!(t.predict(&[1.0, 1.0]).unwrap(), 0);
    }

    #[test]
    fn learns_multiclass_blobs() {
        let ds = three_blobs();
        let t = GradientBoostedTrees::fit(&ds, &GbtConfig::default()).unwrap();
        for i in 0..ds.len() {
            assert_eq!(
                t.predict(ds.features(i)).unwrap(),
                ds.label(i),
                "sample {i}"
            );
        }
    }

    #[test]
    fn more_rounds_do_not_hurt_training_accuracy() {
        let ds = three_blobs();
        let short = GradientBoostedTrees::fit(
            &ds,
            &GbtConfig {
                n_rounds: 2,
                ..GbtConfig::default()
            },
        )
        .unwrap();
        let long = GradientBoostedTrees::fit(
            &ds,
            &GbtConfig {
                n_rounds: 30,
                ..GbtConfig::default()
            },
        )
        .unwrap();
        let acc = |m: &GradientBoostedTrees| {
            (0..ds.len())
                .filter(|&i| m.predict(ds.features(i)).unwrap() == ds.label(i))
                .count()
        };
        assert!(acc(&long) >= acc(&short));
        assert_eq!(long.n_rounds(), 30);
    }

    #[test]
    fn storage_exceeds_single_tree() {
        use crate::tree::{DecisionTree, TreeConfig};
        let ds = three_blobs();
        let gbt = GradientBoostedTrees::fit(&ds, &GbtConfig::default()).unwrap();
        let tree = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        assert!(
            gbt.serialized_size() > tree.serialized_size(),
            "gbt {} <= tree {}",
            gbt.serialized_size(),
            tree.serialized_size()
        );
    }

    #[test]
    fn rejects_bad_config_and_inputs() {
        let ds = three_blobs();
        assert!(GradientBoostedTrees::fit(
            &ds,
            &GbtConfig {
                n_rounds: 0,
                ..GbtConfig::default()
            }
        )
        .is_err());
        assert!(GradientBoostedTrees::fit(
            &ds,
            &GbtConfig {
                learning_rate: 0.0,
                ..GbtConfig::default()
            }
        )
        .is_err());
        assert!(GradientBoostedTrees::fit(
            &ds,
            &GbtConfig {
                max_depth: 0,
                ..GbtConfig::default()
            }
        )
        .is_err());
        let m = GradientBoostedTrees::fit(&ds, &GbtConfig::default()).unwrap();
        assert!(matches!(
            m.predict(&[1.0]),
            Err(ModelError::FeatureMismatch { .. })
        ));
        let empty = Dataset::new(vec![], vec![], vec!["f".into()], 2).unwrap();
        assert!(GradientBoostedTrees::fit(&empty, &GbtConfig::default()).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let ds = xor_dataset();
        let m = GradientBoostedTrees::fit(&ds, &GbtConfig::default()).unwrap();
        let j = serde_json::to_string(&m).unwrap();
        let back: GradientBoostedTrees = serde_json::from_str(&j).unwrap();
        assert_eq!(back.predict(&[1.0, 0.0]).unwrap(), 1);
        assert_eq!(m, back);
    }
}
