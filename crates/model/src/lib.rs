#![warn(missing_docs)]
//! Decision-tree and random-forest models for reordering cost prediction.
//!
//! The Bootes paper (§3.2) trains a CART decision tree on structural matrix
//! features to decide (a) whether row reordering will pay off and (b) which
//! cluster count `k` to use. It chose a tree over random forests, XGBoost and
//! SVMs because the tree matched their accuracy at a fraction of the storage
//! (~11 KB). This crate implements:
//!
//! - [`DecisionTree`]: CART with Gini impurity, class weighting (the paper's
//!   class-balancing fix for the "no reorder" majority), optional per-split
//!   feature subsampling, depth/leaf limits, post-hoc pruning, Gini feature
//!   importances, and serde persistence,
//! - [`RandomForest`]: bootstrap-aggregated trees,
//! - [`GradientBoostedTrees`]: softmax gradient boosting (the "XGBoost"
//!   comparison point) and [`LinearSvm`]: one-vs-rest hinge-loss SVM — the
//!   storage-for-accuracy alternatives the paper evaluated and rejected,
//! - [`Dataset`]: feature-matrix container with deterministic train/test
//!   splits and balanced class weights,
//! - [`eval`]: accuracy, confusion matrices and macro-F1.
//!
//! # Example
//!
//! ```
//! use bootes_model::{Dataset, DecisionTree, TreeConfig};
//!
//! # fn main() -> Result<(), bootes_model::ModelError> {
//! let x = vec![
//!     vec![0.0, 1.0], vec![0.1, 0.9], vec![1.0, 0.1], vec![0.9, 0.0],
//! ];
//! let y = vec![0, 0, 1, 1];
//! let ds = Dataset::new(x, y, vec!["a".into(), "b".into()], 2)?;
//! let tree = DecisionTree::fit(&ds, &TreeConfig::default())?;
//! assert_eq!(tree.predict(&[0.05, 0.95])?, 0);
//! assert_eq!(tree.predict(&[0.95, 0.05])?, 1);
//! # Ok(())
//! # }
//! ```

pub mod cv;
pub mod dataset;
pub mod error;
pub mod eval;
pub mod forest;
pub mod gbt;
pub mod svm;
pub mod tree;

pub use cv::{cross_validate, CvResult};
pub use dataset::Dataset;
pub use error::ModelError;
pub use eval::{accuracy, confusion_matrix, macro_f1};
pub use forest::{ForestConfig, RandomForest};
pub use gbt::{GbtConfig, GradientBoostedTrees};
pub use svm::{LinearSvm, SvmConfig};
pub use tree::{DecisionTree, TreeConfig};
