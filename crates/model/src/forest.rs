//! Random forest: bagged CART trees with feature subsampling.
//!
//! The paper experimented with random forests (and XGBoost/SVMs) before
//! settling on a single decision tree for storage reasons (§3). The forest is
//! kept as the accuracy/storage comparison point: `ablations` benches report
//! both models' accuracy next to their serialized size.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::ModelError;
use crate::tree::{DecisionTree, TreeConfig};

/// Hyperparameters for [`RandomForest::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of bagged trees.
    pub n_trees: usize,
    /// Configuration applied to each tree; `max_features` defaults to
    /// `ceil(sqrt(d))` when `None`.
    pub tree: TreeConfig,
    /// Seed stream for bootstraps and feature subsampling.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 25,
            tree: TreeConfig::default(),
            seed: 99,
        }
    }
}

/// A trained random forest (majority vote over trees).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Trains a forest on `ds`.
    ///
    /// # Errors
    ///
    /// Propagates tree-training errors and rejects `n_trees == 0`.
    pub fn fit(ds: &Dataset, cfg: &ForestConfig) -> Result<Self, ModelError> {
        if cfg.n_trees == 0 {
            return Err(ModelError::InvalidConfig(
                "n_trees must be at least 1".to_string(),
            ));
        }
        let d = ds.n_features();
        let default_mf = ((d as f64).sqrt().ceil() as usize).clamp(1, d.max(1));
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for t in 0..cfg.n_trees {
            let sample = ds.bootstrap(cfg.seed.wrapping_add(t as u64));
            let tree_cfg = TreeConfig {
                max_features: Some(cfg.tree.max_features.unwrap_or(default_mf)),
                seed: cfg.seed.wrapping_add(0x1000 + t as u64),
                ..cfg.tree.clone()
            };
            trees.push(DecisionTree::fit(&sample, &tree_cfg)?);
        }
        Ok(RandomForest {
            trees,
            n_classes: ds.n_classes(),
            n_features: d,
        })
    }

    /// Predicts by majority vote (ties toward the smaller class index).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] if `x` has the wrong length.
    pub fn predict(&self, x: &[f64]) -> Result<usize, ModelError> {
        let proba = self.predict_proba(x)?;
        let mut best = 0;
        for (i, &v) in proba.iter().enumerate() {
            if v > proba[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Mean class-probability distribution over the trees.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] if `x` has the wrong length.
    pub fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, ModelError> {
        let mut acc = vec![0.0; self.n_classes];
        for t in &self.trees {
            for (a, p) in acc.iter_mut().zip(t.predict_proba(x)?) {
                *a += p;
            }
        }
        let inv = 1.0 / self.trees.len() as f64;
        for a in &mut acc {
            *a *= inv;
        }
        Ok(acc)
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Size of the JSON-serialized model in bytes (compare with
    /// [`DecisionTree::serialized_size`] for the paper's storage argument).
    pub fn serialized_size(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let c = i % 3;
            x.push(vec![
                c as f64 * 10.0 + (i % 5) as f64 * 0.1,
                c as f64 * -5.0 + (i % 4) as f64 * 0.1,
            ]);
            y.push(c);
        }
        Dataset::new(x, y, vec!["u".into(), "v".into()], 3).unwrap()
    }

    #[test]
    fn classifies_blobs() {
        let ds = blobs();
        let f = RandomForest::fit(&ds, &ForestConfig::default()).unwrap();
        assert_eq!(f.predict(&[0.2, 0.1]).unwrap(), 0);
        assert_eq!(f.predict(&[10.2, -4.9]).unwrap(), 1);
        assert_eq!(f.predict(&[20.1, -9.8]).unwrap(), 2);
    }

    #[test]
    fn proba_is_distribution() {
        let ds = blobs();
        let f = RandomForest::fit(&ds, &ForestConfig::default()).unwrap();
        let p = f.predict_proba(&[10.0, -5.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn forest_is_larger_than_single_tree() {
        let ds = blobs();
        let tree = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        let forest = RandomForest::fit(&ds, &ForestConfig::default()).unwrap();
        assert!(forest.serialized_size() > tree.serialized_size());
        assert_eq!(forest.n_trees(), 25);
    }

    #[test]
    fn rejects_zero_trees() {
        let ds = blobs();
        assert!(RandomForest::fit(
            &ds,
            &ForestConfig {
                n_trees: 0,
                ..ForestConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn deterministic() {
        let ds = blobs();
        let a = RandomForest::fit(&ds, &ForestConfig::default()).unwrap();
        let b = RandomForest::fit(&ds, &ForestConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
