//! Classification metrics.

/// Fraction of positions where `pred == truth`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn accuracy(truth: &[usize], pred: &[usize]) -> f64 {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth.iter().zip(pred).filter(|(a, b)| a == b).count();
    hits as f64 / truth.len() as f64
}

/// `n_classes x n_classes` confusion matrix; `m[t][p]` counts samples of true
/// class `t` predicted as `p`.
///
/// # Panics
///
/// Panics if lengths differ or any label is `>= n_classes`.
pub fn confusion_matrix(truth: &[usize], pred: &[usize], n_classes: usize) -> Vec<Vec<usize>> {
    assert_eq!(truth.len(), pred.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in truth.iter().zip(pred) {
        m[t][p] += 1;
    }
    m
}

/// Macro-averaged F1 over the classes that appear in `truth`.
///
/// # Panics
///
/// Panics if lengths differ or any label is `>= n_classes`.
#[allow(clippy::needless_range_loop)]
pub fn macro_f1(truth: &[usize], pred: &[usize], n_classes: usize) -> f64 {
    let m = confusion_matrix(truth, pred, n_classes);
    let mut f1_sum = 0.0;
    let mut present = 0usize;
    for c in 0..n_classes {
        let tp = m[c][c] as f64;
        let fn_: f64 = (0..n_classes)
            .filter(|&p| p != c)
            .map(|p| m[c][p] as f64)
            .sum();
        let fp: f64 = (0..n_classes)
            .filter(|&t| t != c)
            .map(|t| m[t][c] as f64)
            .sum();
        if tp + fn_ == 0.0 {
            continue; // class absent from truth
        }
        present += 1;
        let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
        let recall = tp / (tp + fn_);
        if precision + recall > 0.0 {
            f1_sum += 2.0 * precision * recall / (precision + recall);
        }
    }
    if present == 0 {
        0.0
    } else {
        f1_sum / present as f64
    }
}

/// Geometric mean of strictly positive values (used for the paper's geomean
/// speedups). Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geomean requires positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_hits() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 0, 1]), 0.75);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_matrix_places_counts() {
        let m = confusion_matrix(&[0, 0, 1], &[0, 1, 1], 2);
        assert_eq!(m, vec![vec![1, 1], vec![0, 1]]);
    }

    #[test]
    fn perfect_f1() {
        assert!((macro_f1(&[0, 1, 2], &[0, 1, 2], 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_ignores_absent_classes() {
        // Class 2 never appears in truth.
        let f = macro_f1(&[0, 0, 1, 1], &[0, 1, 1, 1], 3);
        // class 0: p=1, r=0.5 -> f1 = 2/3; class 1: p=2/3, r=1 -> f1 = 0.8
        assert!((f - (2.0 / 3.0 + 0.8) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }
}
