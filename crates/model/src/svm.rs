//! Linear one-vs-rest support vector machine.
//!
//! The last of the paper's rejected model alternatives (§3). Trained with
//! averaged stochastic subgradient descent on the L2-regularized hinge loss
//! over standardized features. Deterministic under a fixed seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::ModelError;

/// Hyperparameters for [`LinearSvm::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Initial learning rate (decayed as `lr / (1 + epoch)`).
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub lambda: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        SvmConfig {
            epochs: 60,
            learning_rate: 0.1,
            lambda: 1e-3,
            seed: 13,
        }
    }
}

/// A trained linear multiclass SVM (one binary classifier per class).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    /// `weights[class][feature]`.
    weights: Vec<Vec<f64>>,
    bias: Vec<f64>,
    /// Feature standardization parameters.
    mean: Vec<f64>,
    scale: Vec<f64>,
    n_features: usize,
}

impl LinearSvm {
    /// Trains a one-vs-rest linear SVM on `ds`.
    ///
    /// # Errors
    ///
    /// - [`ModelError::InvalidDataset`] if the dataset is empty.
    /// - [`ModelError::InvalidConfig`] for non-positive epochs/learning rate
    ///   or negative regularization.
    pub fn fit(ds: &Dataset, cfg: &SvmConfig) -> Result<Self, ModelError> {
        if ds.is_empty() {
            return Err(ModelError::InvalidDataset(
                "cannot train on an empty dataset".to_string(),
            ));
        }
        if cfg.epochs == 0 {
            return Err(ModelError::InvalidConfig("epochs must be >= 1".into()));
        }
        let lr_valid = cfg.learning_rate > 0.0;
        if !lr_valid {
            return Err(ModelError::InvalidConfig(
                "learning_rate must be positive".into(),
            ));
        }
        if cfg.lambda < 0.0 {
            return Err(ModelError::InvalidConfig(
                "lambda must be non-negative".into(),
            ));
        }
        let n = ds.len();
        let d = ds.n_features();
        let k = ds.n_classes();

        // Standardization.
        let mut mean = vec![0.0; d];
        for i in 0..n {
            for (m, &v) in mean.iter_mut().zip(ds.features(i)) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        let mut var = vec![0.0; d];
        for i in 0..n {
            for ((s, &v), m) in var.iter_mut().zip(ds.features(i)).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        let scale: Vec<f64> = var
            .iter()
            .map(|&v| {
                let sd = (v / n as f64).sqrt();
                if sd > 1e-12 {
                    1.0 / sd
                } else {
                    0.0
                }
            })
            .collect();
        let standardized: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                ds.features(i)
                    .iter()
                    .zip(&mean)
                    .zip(&scale)
                    .map(|((&v, m), s)| (v - m) * s)
                    .collect()
            })
            .collect();

        let mut weights = vec![vec![0.0f64; d]; k];
        let mut bias = vec![0.0f64; k];
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.learning_rate / (1.0 + epoch as f64);
            for &i in &order {
                let x = &standardized[i];
                for c in 0..k {
                    let y = if ds.label(i) == c { 1.0 } else { -1.0 };
                    let margin: f64 =
                        weights[c].iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + bias[c];
                    if y * margin < 1.0 {
                        for (w, &v) in weights[c].iter_mut().zip(x) {
                            *w += lr * (y * v - 2.0 * cfg.lambda * *w);
                        }
                        bias[c] += lr * y;
                    } else {
                        for w in &mut weights[c] {
                            *w -= lr * 2.0 * cfg.lambda * *w;
                        }
                    }
                }
            }
        }
        Ok(LinearSvm {
            weights,
            bias,
            mean,
            scale,
            n_features: d,
        })
    }

    /// Per-class decision margins for one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] if `x` has the wrong length.
    pub fn decision_scores(&self, x: &[f64]) -> Result<Vec<f64>, ModelError> {
        if x.len() != self.n_features {
            return Err(ModelError::FeatureMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let std: Vec<f64> = x
            .iter()
            .zip(&self.mean)
            .zip(&self.scale)
            .map(|((&v, m), s)| (v - m) * s)
            .collect();
        Ok(self
            .weights
            .iter()
            .zip(&self.bias)
            .map(|(w, b)| w.iter().zip(&std).map(|(wi, v)| wi * v).sum::<f64>() + b)
            .collect())
    }

    /// Predicts the class with the largest margin.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] if `x` has the wrong length.
    pub fn predict(&self, x: &[f64]) -> Result<usize, ModelError> {
        let scores = self.decision_scores(x)?;
        let mut best = 0;
        for (c, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = c;
            }
        }
        Ok(best)
    }

    /// Size of the JSON-serialized model in bytes.
    pub fn serialized_size(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            let c = i % 3;
            x.push(vec![
                c as f64 * 4.0 + (i % 5) as f64 * 0.1,
                -(c as f64) * 2.0 + (i % 7) as f64 * 0.05,
            ]);
            y.push(c);
        }
        Dataset::new(x, y, vec!["u".into(), "v".into()], 3).unwrap()
    }

    #[test]
    fn separates_blobs() {
        let ds = blobs();
        let svm = LinearSvm::fit(&ds, &SvmConfig::default()).unwrap();
        let correct = (0..ds.len())
            .filter(|&i| svm.predict(ds.features(i)).unwrap() == ds.label(i))
            .count();
        assert!(
            correct >= ds.len() - 2,
            "only {correct}/{} correct",
            ds.len()
        );
    }

    #[test]
    fn margins_favor_true_class() {
        let ds = blobs();
        let svm = LinearSvm::fit(&ds, &SvmConfig::default()).unwrap();
        let scores = svm.decision_scores(&[8.0, -4.0]).unwrap();
        assert_eq!(scores.len(), 3);
        assert!(scores[2] > scores[0]);
    }

    #[test]
    fn deterministic() {
        let ds = blobs();
        let a = LinearSvm::fit(&ds, &SvmConfig::default()).unwrap();
        let b = LinearSvm::fit(&ds, &SvmConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn constant_feature_is_ignored_without_nan() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            x.push(vec![5.0, if i < 10 { 0.0 } else { 1.0 }]);
            y.push(usize::from(i >= 10));
        }
        let ds = Dataset::new(x, y, vec!["const".into(), "sig".into()], 2).unwrap();
        let svm = LinearSvm::fit(&ds, &SvmConfig::default()).unwrap();
        assert_eq!(svm.predict(&[5.0, 0.0]).unwrap(), 0);
        assert_eq!(svm.predict(&[5.0, 1.0]).unwrap(), 1);
    }

    #[test]
    fn rejects_bad_inputs() {
        let ds = blobs();
        assert!(LinearSvm::fit(
            &ds,
            &SvmConfig {
                epochs: 0,
                ..SvmConfig::default()
            }
        )
        .is_err());
        assert!(LinearSvm::fit(
            &ds,
            &SvmConfig {
                learning_rate: 0.0,
                ..SvmConfig::default()
            }
        )
        .is_err());
        assert!(LinearSvm::fit(
            &ds,
            &SvmConfig {
                lambda: -1.0,
                ..SvmConfig::default()
            }
        )
        .is_err());
        let svm = LinearSvm::fit(&ds, &SvmConfig::default()).unwrap();
        assert!(matches!(
            svm.predict(&[0.0]),
            Err(ModelError::FeatureMismatch { .. })
        ));
        let empty = Dataset::new(vec![], vec![], vec!["f".into()], 2).unwrap();
        assert!(LinearSvm::fit(&empty, &SvmConfig::default()).is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let ds = blobs();
        let svm = LinearSvm::fit(&ds, &SvmConfig::default()).unwrap();
        let j = serde_json::to_string(&svm).unwrap();
        assert_eq!(serde_json::from_str::<LinearSvm>(&j).unwrap(), svm);
        assert!(svm.serialized_size() > 0);
    }
}
