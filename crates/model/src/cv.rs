//! K-fold cross-validation.
//!
//! The paper reports a single 70/30 split; cross-validation quantifies how
//! stable that estimate is, which matters for the small corpora the
//! harnesses train on (the `trained_model` helper selects among split seeds
//! for the same reason).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::dataset::Dataset;
use crate::error::ModelError;

/// Accuracy summary of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Per-fold held-out accuracies.
    pub fold_accuracies: Vec<f64>,
}

impl CvResult {
    /// Mean held-out accuracy.
    pub fn mean(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Population standard deviation of the fold accuracies.
    pub fn std_dev(&self) -> f64 {
        if self.fold_accuracies.is_empty() {
            return 0.0;
        }
        let m = self.mean();
        (self
            .fold_accuracies
            .iter()
            .map(|a| (a - m) * (a - m))
            .sum::<f64>()
            / self.fold_accuracies.len() as f64)
            .sqrt()
    }
}

/// Runs `k`-fold cross-validation: `fit(train)` must return a model and
/// `predict(model, features)` its class for one sample.
///
/// Folds are contiguous slices of a seeded shuffle, so results are
/// deterministic.
///
/// # Errors
///
/// - [`ModelError::InvalidConfig`] if `k < 2` or `k > ds.len()`.
/// - Propagates errors from `fit`.
pub fn cross_validate<M, F, P>(
    ds: &Dataset,
    k: usize,
    seed: u64,
    mut fit: F,
    mut predict: P,
) -> Result<CvResult, ModelError>
where
    F: FnMut(&Dataset) -> Result<M, ModelError>,
    P: FnMut(&M, &[f64]) -> Result<usize, ModelError>,
{
    if k < 2 || k > ds.len() {
        return Err(ModelError::InvalidConfig(format!(
            "k = {k} must be in 2..={}",
            ds.len()
        )));
    }
    let mut order: Vec<usize> = (0..ds.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut fold_accuracies = Vec::with_capacity(k);
    for fold in 0..k {
        let lo = fold * ds.len() / k;
        let hi = (fold + 1) * ds.len() / k;
        let test_idx = &order[lo..hi];
        let train_idx: Vec<usize> = order[..lo].iter().chain(&order[hi..]).copied().collect();
        let subset = |idx: &[usize]| -> Result<Dataset, ModelError> {
            Dataset::new(
                idx.iter().map(|&i| ds.features(i).to_vec()).collect(),
                idx.iter().map(|&i| ds.label(i)).collect(),
                ds.feature_names().to_vec(),
                ds.n_classes(),
            )
        };
        let train = subset(&train_idx)?;
        let model = fit(&train)?;
        let mut hits = 0usize;
        for &i in test_idx {
            if predict(&model, ds.features(i))? == ds.label(i) {
                hits += 1;
            }
        }
        fold_accuracies.push(if test_idx.is_empty() {
            1.0
        } else {
            hits as f64 / test_idx.len() as f64
        });
    }
    Ok(CvResult { fold_accuracies })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::{DecisionTree, TreeConfig};

    fn separable() -> Dataset {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let c = usize::from(i >= 20);
            x.push(vec![c as f64 * 10.0 + (i % 5) as f64 * 0.1]);
            y.push(c);
        }
        Dataset::new(x, y, vec!["f".into()], 2).unwrap()
    }

    #[test]
    fn perfect_on_separable_data() {
        let ds = separable();
        let r = cross_validate(
            &ds,
            5,
            1,
            |train| DecisionTree::fit(train, &TreeConfig::default()),
            |m, x| m.predict(x),
        )
        .unwrap();
        assert_eq!(r.fold_accuracies.len(), 5);
        assert!((r.mean() - 1.0).abs() < 1e-12);
        assert_eq!(r.std_dev(), 0.0);
    }

    #[test]
    fn folds_partition_the_data() {
        // With k = n every fold holds exactly one sample.
        let ds = separable();
        let r = cross_validate(
            &ds,
            ds.len(),
            2,
            |train| DecisionTree::fit(train, &TreeConfig::default()),
            |m, x| m.predict(x),
        )
        .unwrap();
        assert_eq!(r.fold_accuracies.len(), ds.len());
    }

    #[test]
    fn rejects_bad_k() {
        let ds = separable();
        let fit = |train: &Dataset| DecisionTree::fit(train, &TreeConfig::default());
        let pred = |m: &DecisionTree, x: &[f64]| m.predict(x);
        assert!(cross_validate(&ds, 1, 0, fit, pred).is_err());
        let fit = |train: &Dataset| DecisionTree::fit(train, &TreeConfig::default());
        let pred = |m: &DecisionTree, x: &[f64]| m.predict(x);
        assert!(cross_validate(&ds, 41, 0, fit, pred).is_err());
    }

    #[test]
    fn deterministic() {
        let ds = separable();
        let run = |seed| {
            cross_validate(
                &ds,
                4,
                seed,
                |train| DecisionTree::fit(train, &TreeConfig::default()),
                |m, x| m.predict(x),
            )
            .unwrap()
        };
        assert_eq!(run(7), run(7));
    }
}
