//! Error type for model training and inference.

use std::fmt;

/// Error returned by dataset construction, training and prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Features, labels or class counts were inconsistent.
    InvalidDataset(String),
    /// A hyperparameter was out of range.
    InvalidConfig(String),
    /// A prediction input did not match the trained feature dimension.
    FeatureMismatch {
        /// Features the model was trained with.
        expected: usize,
        /// Features supplied at prediction time.
        got: usize,
    },
    /// Serialized model could not be decoded.
    Serialization(String),
    /// A class index or cluster count did not map to a known label — the
    /// signature of a corrupt or mismatched model file.
    InvalidLabel(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidDataset(msg) => write!(f, "invalid dataset: {msg}"),
            ModelError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ModelError::FeatureMismatch { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            ModelError::Serialization(msg) => write!(f, "serialization error: {msg}"),
            ModelError::InvalidLabel(msg) => write!(f, "invalid label: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = ModelError::FeatureMismatch {
            expected: 5,
            got: 3,
        };
        assert_eq!(e.to_string(), "expected 5 features, got 3");
    }
}
