//! CART decision-tree classifier.
//!
//! Binary splits on `feature <= threshold`, chosen to minimize weighted Gini
//! impurity. Supports per-class sample weights (the paper's class balancing),
//! per-split feature subsampling (used by the random forest), depth and leaf
//! limits, post-hoc structural pruning, Gini feature importances and serde
//! persistence. The serialized size backs the paper's "~11 KB model" claim.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::error::ModelError;

/// Hyperparameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum weighted samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum samples each child must receive.
    pub min_samples_leaf: usize,
    /// Per-class weights; `None` weighs every sample 1.0. Use
    /// [`Dataset::balanced_class_weights`] for the paper's balancing.
    pub class_weights: Option<Vec<f64>>,
    /// Features examined per split; `None` examines all (set by the forest).
    pub max_features: Option<usize>,
    /// Seed for feature subsampling (unused when `max_features` is `None`).
    pub seed: u64,
    /// Minimum Gini impurity decrease a split must achieve.
    pub min_impurity_decrease: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            class_weights: None,
            max_features: None,
            seed: 7,
            min_impurity_decrease: 0.0,
        }
    }
}

/// One node of the flattened tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Majority class of the training samples reaching this leaf.
        class: usize,
        /// Weighted class distribution (normalized).
        proba: Vec<f64>,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
        /// Weighted impurity decrease contributed by this split (for
        /// feature importances).
        gain: f64,
    },
}

/// A trained CART classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    n_features: usize,
    n_classes: usize,
}

struct Builder<'a> {
    ds: &'a Dataset,
    weights: Vec<f64>,
    cfg: &'a TreeConfig,
    nodes: Vec<Node>,
    rng: StdRng,
}

impl DecisionTree {
    /// Trains a tree on `ds`.
    ///
    /// # Errors
    ///
    /// - [`ModelError::InvalidDataset`] if the dataset is empty.
    /// - [`ModelError::InvalidConfig`] if class weights have the wrong
    ///   length, contain negatives, or `max_features == 0`.
    pub fn fit(ds: &Dataset, cfg: &TreeConfig) -> Result<Self, ModelError> {
        if ds.is_empty() {
            return Err(ModelError::InvalidDataset(
                "cannot train on an empty dataset".to_string(),
            ));
        }
        if let Some(w) = &cfg.class_weights {
            if w.len() != ds.n_classes() {
                return Err(ModelError::InvalidConfig(format!(
                    "{} class weights for {} classes",
                    w.len(),
                    ds.n_classes()
                )));
            }
            if w.iter().any(|&x| x.is_nan() || x < 0.0 || !x.is_finite()) {
                return Err(ModelError::InvalidConfig(
                    "class weights must be finite and non-negative".to_string(),
                ));
            }
        }
        if cfg.max_features == Some(0) {
            return Err(ModelError::InvalidConfig(
                "max_features must be at least 1".to_string(),
            ));
        }
        let weights: Vec<f64> = (0..ds.len())
            .map(|i| match &cfg.class_weights {
                Some(w) => w[ds.label(i)],
                None => 1.0,
            })
            .collect();
        let mut b = Builder {
            ds,
            weights,
            cfg,
            nodes: Vec::new(),
            rng: StdRng::seed_from_u64(cfg.seed),
        };
        let all: Vec<usize> = (0..ds.len()).collect();
        b.build(&all, 0);
        Ok(DecisionTree {
            nodes: b.nodes,
            n_features: ds.n_features(),
            n_classes: ds.n_classes(),
        })
    }

    /// Predicts the class of one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] if `x` has the wrong length.
    pub fn predict(&self, x: &[f64]) -> Result<usize, ModelError> {
        Ok(self.leaf(x)?.0)
    }

    /// Predicts the class-probability distribution of one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::FeatureMismatch`] if `x` has the wrong length.
    pub fn predict_proba(&self, x: &[f64]) -> Result<Vec<f64>, ModelError> {
        Ok(self.leaf(x)?.1.to_vec())
    }

    fn leaf(&self, x: &[f64]) -> Result<(usize, &[f64]), ModelError> {
        if x.len() != self.n_features {
            return Err(ModelError::FeatureMismatch {
                expected: self.n_features,
                got: x.len(),
            });
        }
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { class, proba } => return Ok((*class, proba)),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    idx = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Tree depth (root-only trees have depth 0).
    pub fn depth(&self) -> usize {
        self.depth_of(0)
    }

    fn depth_of(&self, idx: usize) -> usize {
        match &self.nodes[idx] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + self.depth_of(*left).max(self.depth_of(*right)),
        }
    }

    /// Number of features the tree was trained with.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Number of classes the tree predicts.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Gini feature importances, normalized to sum to 1 (all zeros for a
    /// stump with no splits).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut imp = vec![0.0; self.n_features];
        for n in &self.nodes {
            if let Node::Split { feature, gain, .. } = n {
                imp[*feature] += gain.max(0.0);
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Collapses every split whose two children are leaves predicting the
    /// same class — the paper's post-training pruning pass that shrinks the
    /// deployed model. Returns the number of splits removed.
    pub fn prune(&mut self) -> usize {
        let mut removed = 0;
        loop {
            let mut target = None;
            for (idx, node) in self.nodes.iter().enumerate() {
                if let Node::Split { left, right, .. } = node {
                    if let (Node::Leaf { class: cl, .. }, Node::Leaf { class: cr, .. }) =
                        (&self.nodes[*left], &self.nodes[*right])
                    {
                        if cl == cr {
                            target = Some((idx, *left, *right));
                            break;
                        }
                    }
                }
            }
            let Some((idx, left, right)) = target else {
                break;
            };
            // Merge the children's distributions (unweighted average keeps
            // the majority class by construction since both agree).
            let (cl, pl) = match &self.nodes[left] {
                Node::Leaf { class, proba } => (*class, proba.clone()),
                _ => unreachable!("checked leaf above"),
            };
            let pr = match &self.nodes[right] {
                Node::Leaf { proba, .. } => proba.clone(),
                _ => unreachable!("checked leaf above"),
            };
            let merged: Vec<f64> = pl.iter().zip(&pr).map(|(a, b)| 0.5 * (a + b)).collect();
            self.nodes[idx] = Node::Leaf {
                class: cl,
                proba: merged,
            };
            removed += 1;
            // Dead children stay in the arena; `serialized_size` reflects the
            // reachable tree because serde walks indices... it does not, so
            // compact the arena instead.
            self.compact();
        }
        removed
    }

    /// Rebuilds the node arena keeping only nodes reachable from the root.
    fn compact(&mut self) {
        let mut map = vec![usize::MAX; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0usize];
        while let Some(idx) = stack.pop() {
            if map[idx] != usize::MAX {
                continue;
            }
            map[idx] = order.len();
            order.push(idx);
            if let Node::Split { left, right, .. } = &self.nodes[idx] {
                stack.push(*right);
                stack.push(*left);
            }
        }
        let mut new_nodes = Vec::with_capacity(order.len());
        for &old in &order {
            let mut n = self.nodes[old].clone();
            if let Node::Split { left, right, .. } = &mut n {
                *left = map[*left];
                *right = map[*right];
            }
            new_nodes.push(n);
        }
        self.nodes = new_nodes;
    }

    /// Size of the JSON-serialized model in bytes (the paper's storage
    /// metric).
    pub fn serialized_size(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }

    /// Serializes the model to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Serialization`] on encoder failure.
    pub fn to_json(&self) -> Result<String, ModelError> {
        serde_json::to_string(self).map_err(|e| ModelError::Serialization(e.to_string()))
    }

    /// Restores a model from JSON produced by [`DecisionTree::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::Serialization`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, ModelError> {
        serde_json::from_str(json).map_err(|e| ModelError::Serialization(e.to_string()))
    }
}

impl Builder<'_> {
    /// Builds the subtree over `idx_set`, returning its node index.
    fn build(&mut self, idx_set: &[usize], depth: usize) -> usize {
        let (counts, total_w) = self.weighted_counts(idx_set);
        let node_impurity = gini(&counts, total_w);
        let majority = argmax(&counts);
        let proba: Vec<f64> = counts
            .iter()
            .map(|&c| if total_w > 0.0 { c / total_w } else { 0.0 })
            .collect();

        let make_leaf = depth >= self.cfg.max_depth
            || idx_set.len() < self.cfg.min_samples_split
            || node_impurity <= 0.0;

        let split = if make_leaf {
            None
        } else {
            self.best_split(idx_set, node_impurity, total_w)
        };

        match split {
            None => {
                self.nodes.push(Node::Leaf {
                    class: majority,
                    proba,
                });
                self.nodes.len() - 1
            }
            Some((feature, threshold, gain)) => {
                let (l, r): (Vec<usize>, Vec<usize>) = idx_set
                    .iter()
                    .partition(|&&i| self.ds.features(i)[feature] <= threshold);
                // Reserve our slot before recursing so child indices are known.
                let me = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    class: majority,
                    proba: proba.clone(),
                });
                let left = self.build(&l, depth + 1);
                let right = self.build(&r, depth + 1);
                self.nodes[me] = Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    gain,
                };
                me
            }
        }
    }

    fn weighted_counts(&self, idx_set: &[usize]) -> (Vec<f64>, f64) {
        let mut counts = vec![0.0; self.ds.n_classes()];
        let mut total = 0.0;
        for &i in idx_set {
            counts[self.ds.label(i)] += self.weights[i];
            total += self.weights[i];
        }
        (counts, total)
    }

    /// Finds the `(feature, threshold, gain)` minimizing weighted child Gini.
    fn best_split(
        &mut self,
        idx_set: &[usize],
        node_impurity: f64,
        total_w: f64,
    ) -> Option<(usize, f64, f64)> {
        let d = self.ds.n_features();
        let mut features: Vec<usize> = (0..d).collect();
        if let Some(mf) = self.cfg.max_features {
            features.shuffle(&mut self.rng);
            features.truncate(mf.min(d));
            features.sort_unstable();
        }

        let k = self.ds.n_classes();
        let mut best: Option<(usize, f64, f64)> = None;
        let mut sorted: Vec<usize> = Vec::with_capacity(idx_set.len());
        for &f in &features {
            sorted.clear();
            sorted.extend_from_slice(idx_set);
            sorted.sort_by(|&a, &b| {
                self.ds.features(a)[f]
                    .partial_cmp(&self.ds.features(b)[f])
                    .expect("finite features")
            });
            let mut left_counts = vec![0.0; k];
            let mut left_w = 0.0;
            let (total_counts, _) = self.weighted_counts(idx_set);
            for pos in 0..sorted.len() - 1 {
                let i = sorted[pos];
                left_counts[self.ds.label(i)] += self.weights[i];
                left_w += self.weights[i];
                let xv = self.ds.features(i)[f];
                let xn = self.ds.features(sorted[pos + 1])[f];
                if xn <= xv {
                    continue; // no valid threshold between equal values
                }
                let n_left = pos + 1;
                let n_right = sorted.len() - n_left;
                if n_left < self.cfg.min_samples_leaf || n_right < self.cfg.min_samples_leaf {
                    continue;
                }
                let right_counts: Vec<f64> = total_counts
                    .iter()
                    .zip(&left_counts)
                    .map(|(t, l)| t - l)
                    .collect();
                let right_w = total_w - left_w;
                let child_impurity = (left_w / total_w) * gini(&left_counts, left_w)
                    + (right_w / total_w) * gini(&right_counts, right_w);
                let gain = node_impurity - child_impurity;
                if gain >= self.cfg.min_impurity_decrease
                    && best.is_none_or(|(_, _, g)| gain > g + 1e-15)
                {
                    best = Some((f, 0.5 * (xv + xn), gain));
                }
            }
        }
        best
    }
}

fn gini(counts: &[f64], total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - counts
        .iter()
        .map(|&c| (c / total) * (c / total))
        .sum::<f64>()
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in xs.iter().enumerate() {
        if v > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_dataset() -> Dataset {
        // XOR needs depth >= 2; a healthy CART must solve it exactly.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..2 {
            for b in 0..2 {
                for jitter in 0..4 {
                    x.push(vec![
                        a as f64 + jitter as f64 * 0.01,
                        b as f64 + jitter as f64 * 0.01,
                    ]);
                    y.push((a ^ b) as usize);
                }
            }
        }
        Dataset::new(x, y, vec!["a".into(), "b".into()], 2).unwrap()
    }

    #[test]
    fn learns_xor() {
        let ds = xor_dataset();
        let t = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(t.predict(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(t.predict(&[1.0, 0.0]).unwrap(), 1);
        assert_eq!(t.predict(&[0.0, 1.0]).unwrap(), 1);
        assert_eq!(t.predict(&[1.0, 1.0]).unwrap(), 0);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn perfect_training_accuracy_on_separable_data() {
        let ds = xor_dataset();
        let t = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        for i in 0..ds.len() {
            assert_eq!(t.predict(ds.features(i)).unwrap(), ds.label(i));
        }
    }

    #[test]
    fn depth_limit_respected() {
        let ds = xor_dataset();
        let t = DecisionTree::fit(
            &ds,
            &TreeConfig {
                max_depth: 1,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert!(t.depth() <= 1);
    }

    #[test]
    fn class_weights_shift_majority() {
        // 9 samples of class 0 vs 1 of class 1 at the same x: with balanced
        // weights an impossible split region must still prefer... here we
        // check the leaf probability shifts toward the upweighted class.
        let x: Vec<Vec<f64>> = (0..10).map(|_| vec![0.0]).collect();
        let mut y = vec![0usize; 9];
        y.push(1);
        let ds = Dataset::new(x, y, vec!["f".into()], 2).unwrap();
        let unweighted = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(unweighted.predict(&[0.0]).unwrap(), 0);
        let weighted = DecisionTree::fit(
            &ds,
            &TreeConfig {
                class_weights: Some(vec![1.0, 100.0]),
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(weighted.predict(&[0.0]).unwrap(), 1);
    }

    #[test]
    fn proba_sums_to_one() {
        let ds = xor_dataset();
        let t = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        let p = t.predict_proba(&[0.5, 0.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn feature_importances_identify_informative_feature() {
        // Only feature 1 carries signal.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            x.push(vec![(i % 7) as f64, if i < 20 { 0.0 } else { 1.0 }]);
            y.push(usize::from(i >= 20));
        }
        let ds = Dataset::new(x, y, vec!["noise".into(), "signal".into()], 2).unwrap();
        let t = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        let imp = t.feature_importances();
        assert!(imp[1] > 0.99, "importances {imp:?}");
    }

    #[test]
    fn pruning_removes_redundant_splits() {
        let ds = xor_dataset();
        let mut t = DecisionTree::fit(
            &ds,
            &TreeConfig {
                max_depth: 20,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        let before = t.node_count();
        t.prune();
        assert!(t.node_count() <= before);
        // Predictions unchanged by pruning.
        assert_eq!(t.predict(&[1.0, 0.0]).unwrap(), 1);
        assert_eq!(t.predict(&[1.0, 1.0]).unwrap(), 0);
    }

    #[test]
    fn serde_roundtrip_preserves_predictions() {
        let ds = xor_dataset();
        let t = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        let json = t.to_json().unwrap();
        let back = DecisionTree::from_json(&json).unwrap();
        assert_eq!(back.predict(&[0.0, 1.0]).unwrap(), 1);
        assert!(t.serialized_size() > 0);
    }

    #[test]
    fn rejects_bad_inputs() {
        let ds = xor_dataset();
        assert!(DecisionTree::fit(
            &ds,
            &TreeConfig {
                class_weights: Some(vec![1.0]),
                ..TreeConfig::default()
            }
        )
        .is_err());
        assert!(DecisionTree::fit(
            &ds,
            &TreeConfig {
                max_features: Some(0),
                ..TreeConfig::default()
            }
        )
        .is_err());
        let t = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        assert!(matches!(
            t.predict(&[1.0]),
            Err(ModelError::FeatureMismatch { .. })
        ));
        let empty = Dataset::new(vec![], vec![], vec!["f".into()], 2).unwrap();
        assert!(DecisionTree::fit(&empty, &TreeConfig::default()).is_err());
    }

    #[test]
    fn single_class_dataset_yields_stump() {
        let ds = Dataset::new(
            vec![vec![0.0], vec![1.0], vec![2.0]],
            vec![1, 1, 1],
            vec!["f".into()],
            3,
        )
        .unwrap();
        let t = DecisionTree::fit(&ds, &TreeConfig::default()).unwrap();
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[5.0]).unwrap(), 1);
    }
}
