//! Automatic shrinking of failing schedules.
//!
//! Drop-one-at-a-time to a fixed point: for each entry, try the schedule
//! without it; if the failure still reproduces, the entry was irrelevant and
//! stays removed. The result is a 1-minimal failing schedule — removing any
//! single remaining entry makes the failure disappear — which is the spec
//! worth pasting into a bug report.

use crate::schedule::Schedule;

/// Shrinks `schedule` against `still_fails` (a rerun returning whether the
/// failure reproduces). Returns the minimized schedule and the number of
/// reruns spent. The original schedule is assumed failing; the worst case is
/// O(n²) reruns for n entries (n is small — schedules carry at most a
/// handful of faults).
pub fn shrink<F>(schedule: &Schedule, mut still_fails: F) -> (Schedule, usize)
where
    F: FnMut(&Schedule) -> bool,
{
    let mut current = schedule.clone();
    let mut reruns = 0;
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < current.entries.len() {
            let mut candidate = current.clone();
            candidate.entries.remove(i);
            reruns += 1;
            if still_fails(&candidate) {
                current = candidate;
                reduced = true;
                // Same index now holds the next entry.
            } else {
                i += 1;
            }
        }
        if !reduced {
            return (current, reruns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEntry, Workload};

    fn sched(specs: &[&str]) -> Schedule {
        Schedule {
            seed: 99,
            workload: Workload::Pipeline,
            entries: specs
                .iter()
                .map(|s| FaultEntry {
                    spec: (*s).to_string(),
                })
                .collect(),
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        let full = sched(&["a=err@1", "b=panic@2", "c=delay:5ms@1", "d=err%0.25"]);
        // The failure reproduces iff the culprit `b=panic@2` is armed.
        let (min, reruns) = shrink(&full, |s| s.entries.iter().any(|e| e.spec == "b=panic@2"));
        assert_eq!(min.entries.len(), 1);
        assert_eq!(min.entries[0].spec, "b=panic@2");
        assert!(
            reruns >= full.entries.len(),
            "each entry tried at least once"
        );
    }

    #[test]
    fn shrinks_to_a_required_pair() {
        let full = sched(&["a=err@1", "b=err@1", "c=err@1"]);
        let needs = |s: &Schedule| {
            let has = |spec: &str| s.entries.iter().any(|e| e.spec == spec);
            has("a=err@1") && has("c=err@1")
        };
        let (min, _) = shrink(&full, needs);
        assert_eq!(min.entries.len(), 2);
        assert!(needs(&min));
    }

    #[test]
    fn irreducible_schedule_is_unchanged() {
        let full = sched(&["a=err@1"]);
        let (min, reruns) = shrink(&full, |s| !s.entries.is_empty());
        assert_eq!(min, full);
        assert_eq!(reruns, 1);
    }

    #[test]
    fn failure_independent_of_entries_shrinks_to_empty() {
        let full = sched(&["a=err@1", "b=err@1"]);
        let (min, _) = shrink(&full, |_| true);
        assert!(
            min.entries.is_empty(),
            "a seed-only failure needs no faults"
        );
    }
}
