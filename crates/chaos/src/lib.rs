//! bootes-chaos: seeded chaos engineering for the Bootes stack.
//!
//! Deterministic failpoints (`BOOTES_FAILPOINTS="site=err@3"`) only test the
//! failures someone already thought to enumerate. This crate closes the gap:
//! it *generates* fault schedules from a seed — probabilistic errors,
//! injected delays, panics, and kill-without-unwinding crash drills — runs
//! real `bootes` subprocesses under them, and checks invariant oracles after
//! every run:
//!
//! - no panic escapes an isolation boundary (subprocess exit status),
//! - every admitted request is answered (retrying client converges),
//! - cache hits are bit-identical to recompute,
//! - budget ceilings degrade work instead of failing it,
//! - a process killed mid-cache-write recovers fully on restart (torn temp
//!   files swept, results bit-identical to a fault-free run).
//!
//! Everything replays from a `(seed, workload)` pair: the schedule generator
//! is seeded ([`Schedule::generate`]), probabilistic failpoint firing is
//! seeded (`BOOTES_FAILPOINT_SEED`), and the retrying client's jitter is
//! seeded. A failing schedule is shrunk ([`shrink::shrink`]) by dropping
//! faults one at a time while the failure reproduces, down to a 1-minimal
//! replay token (`seed:workload:spec`) accepted by `bootes chaos --replay`.
//!
//! Metrics: `chaos.runs`, `chaos.violations`, `chaos.shrink_reruns` (see the
//! `bootes-obs` catalog).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod driver;
pub mod oracle;
pub mod schedule;
pub mod shrink;

pub use driver::{run_and_shrink, run_batch, ChaosConfig, ChaosReport, RunReport};
pub use oracle::Violation;
pub use schedule::{FaultEntry, Schedule, Workload};
