//! Seeded random fault schedules.
//!
//! A [`Schedule`] is fully determined by its seed: the workload it drives
//! (round-robin over the three workload kinds so every small batch covers
//! all of them, crash drills included) and the fault entries it arms. The
//! entries render to the `guard::failpoint` spec grammar and the subprocess
//! additionally receives the seed as `BOOTES_FAILPOINT_SEED`, so
//! probabilistic entries replay bit-identically too — a `(seed, workload)`
//! pair IS the repro.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Which workload a schedule drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// One-shot CLI pipeline run (`bootes reorder`) with faults at the
    /// graceful-degradation sites; must still exit 0 with a valid output.
    Pipeline,
    /// `bootes serve` daemon under fault load, driven by a retrying client;
    /// every request must be answered and the drain must be clean.
    Serve,
    /// SIGKILL-mid-cache-write drill: a `kill` failpoint inside the cache's
    /// torn-write window, then a restart on the same cache dir that must
    /// recover fully and answer bit-identically to a fault-free run.
    CrashRestart,
}

impl Workload {
    /// Stable wire name (used in replay specs and reports).
    pub fn name(self) -> &'static str {
        match self {
            Workload::Pipeline => "pipeline",
            Workload::Serve => "serve",
            Workload::CrashRestart => "crash-restart",
        }
    }

    fn from_name(s: &str) -> Option<Workload> {
        match s {
            "pipeline" => Some(Workload::Pipeline),
            "serve" => Some(Workload::Serve),
            "crash-restart" => Some(Workload::CrashRestart),
            _ => None,
        }
    }
}

/// One armed fault, already rendered to the failpoint spec grammar
/// (`site=action[@N|%P]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEntry {
    /// The full `site=action[trigger]` spec fragment.
    pub spec: String,
}

/// A reproducible fault schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The generating seed (also the subprocess `BOOTES_FAILPOINT_SEED`).
    pub seed: u64,
    /// Which workload the faults are injected into.
    pub workload: Workload,
    /// The armed faults; the empty list is a valid (fault-free) schedule.
    pub entries: Vec<FaultEntry>,
}

/// Failpoint sites on the pipeline's graceful-degradation path. A fault at
/// any of them must degrade the reorder to a cheaper algorithm, never fail
/// the run — which is what makes the exit-0 oracle decidable. Sites outside
/// the chain (e.g. `sparse.io.read`) legitimately produce typed error exits
/// and are deliberately not in the pool.
const PIPELINE_SITES: &[&str] = &[
    "lanczos.restart",
    "kmeans.iter",
    "spectral.cluster",
    "recursive.bisect",
    "hier.merge",
    "par.worker",
];

/// Serve-layer sites. `serve.accept` drops the connection (the retrying
/// client reconnects), `serve.parse` fails one request line (a well-formed
/// error response), `serve.coalesce.leader` fails a whole coalesced flight.
/// All are `err`-only: a panic here would cross a thread boundary the serve
/// crate does not isolate, which is a known limitation, not a chaos target.
const SERVE_SITES: &[&str] = &["serve.accept", "serve.parse", "serve.coalesce.leader"];

impl Schedule {
    /// Generates the schedule for `seed`. Deterministic: the same seed
    /// always yields the same workload and entries.
    pub fn generate(seed: u64) -> Schedule {
        let workload = match seed % 3 {
            0 => Workload::Pipeline,
            1 => Workload::Serve,
            _ => Workload::CrashRestart,
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let mut entries = Vec::new();
        match workload {
            Workload::Pipeline => {
                for _ in 0..rng.random_range(1..4usize) {
                    entries.push(pipeline_entry(&mut rng));
                }
            }
            Workload::Serve => {
                // At least one serve-layer fault, plus pipeline faults that
                // the daemon's executions must absorb.
                entries.push(serve_entry(&mut rng));
                for _ in 0..rng.random_range(0..3usize) {
                    entries.push(pipeline_entry(&mut rng));
                }
            }
            Workload::CrashRestart => {
                // The drill core: die without unwinding in the torn-write
                // window (kill@1 fires exactly between the temp write and the
                // atomic rename). Optional pipeline faults exercise recovery
                // under degradation. Never stack a second action on the same
                // site: the failpoint table holds one entry per site, so a
                // duplicate would shadow the kill and defang the drill.
                entries.push(FaultEntry {
                    spec: "cache.disk.tmp_written=kill@1".to_string(),
                });
                for _ in 0..rng.random_range(0..3usize) {
                    entries.push(pipeline_entry(&mut rng));
                }
            }
        }
        // One entry per site: the failpoint table keys on site, so a second
        // entry would silently shadow the first and the schedule would not
        // mean what it prints. Keep the first occurrence (preserves the
        // crash drill's kill entry).
        let mut seen = Vec::new();
        entries.retain(|e| {
            let site = e.spec.split('=').next().unwrap_or_default().to_string();
            if seen.contains(&site) {
                false
            } else {
                seen.push(site);
                true
            }
        });
        Schedule {
            seed,
            workload,
            entries,
        }
    }

    /// The `BOOTES_FAILPOINTS` spec string (entries joined with commas).
    pub fn spec_string(&self) -> String {
        let frags: Vec<&str> = self.entries.iter().map(|e| e.spec.as_str()).collect();
        frags.join(",")
    }

    /// Compact single-token replay form: `seed:workload:spec`. Feed it back
    /// through `bootes chaos --replay <token>` (or [`Schedule::parse_replay`])
    /// to rerun exactly this schedule — including a shrunk entry subset that
    /// no generator seed would produce.
    pub fn replay_string(&self) -> String {
        format!(
            "{}:{}:{}",
            self.seed,
            self.workload.name(),
            self.spec_string()
        )
    }

    /// Parses a [`Schedule::replay_string`] token.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed token.
    pub fn parse_replay(token: &str) -> Result<Schedule, String> {
        let (seed, rest) = token
            .split_once(':')
            .ok_or_else(|| format!("replay token `{token}`: expected seed:workload:spec"))?;
        let (workload, spec) = rest
            .split_once(':')
            .ok_or_else(|| format!("replay token `{token}`: expected seed:workload:spec"))?;
        let seed: u64 = seed
            .parse()
            .map_err(|_| format!("replay token `{token}`: bad seed `{seed}`"))?;
        let workload = Workload::from_name(workload)
            .ok_or_else(|| format!("replay token `{token}`: unknown workload `{workload}`"))?;
        // Validate the spec through the real parser so a typo fails here,
        // not silently inside the subprocess.
        bootes_guard::ScopedFailpoints::arm(spec).map(drop)?;
        let entries = spec
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| FaultEntry {
                spec: s.trim().to_string(),
            })
            .collect();
        Ok(Schedule {
            seed,
            workload,
            entries,
        })
    }
}

fn pipeline_entry(rng: &mut StdRng) -> FaultEntry {
    let site = PIPELINE_SITES[rng.random_range(0..PIPELINE_SITES.len())];
    let action = match rng.random_range(0..4u32) {
        0 => "panic".to_string(),
        1 => format!("delay:{}ms", rng.random_range(1..20u64)),
        _ => "err".to_string(),
    };
    let trigger = if rng.random::<bool>() {
        format!("@{}", rng.random_range(1..4u64))
    } else {
        // Probabilities are kept below 0.5 so repeated hits of a degraded
        // retry path still converge.
        format!("%{:.2}", rng.random_range(0.05..0.45f64))
    };
    FaultEntry {
        spec: format!("{site}={action}{trigger}"),
    }
}

fn serve_entry(rng: &mut StdRng) -> FaultEntry {
    let site = SERVE_SITES[rng.random_range(0..SERVE_SITES.len())];
    let trigger = if rng.random::<bool>() {
        format!("@{}", rng.random_range(1..3u64))
    } else {
        // Capped well below the retry budget's convergence threshold.
        format!("%{:.2}", rng.random_range(0.05..0.30f64))
    };
    FaultEntry {
        spec: format!("{site}=err{trigger}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..30 {
            assert_eq!(Schedule::generate(seed), Schedule::generate(seed));
        }
        assert_ne!(
            Schedule::generate(1).spec_string(),
            Schedule::generate(4).spec_string(),
            "different seeds of the same workload should differ"
        );
    }

    #[test]
    fn workloads_round_robin() {
        assert_eq!(Schedule::generate(0).workload, Workload::Pipeline);
        assert_eq!(Schedule::generate(1).workload, Workload::Serve);
        assert_eq!(Schedule::generate(2).workload, Workload::CrashRestart);
        assert_eq!(Schedule::generate(3).workload, Workload::Pipeline);
    }

    #[test]
    fn generated_specs_parse_under_guard() {
        for seed in 0..60 {
            let s = Schedule::generate(seed);
            let spec = s.spec_string();
            let guard = bootes_guard::ScopedFailpoints::arm(&spec)
                .unwrap_or_else(|e| panic!("seed {seed} spec `{spec}` failed to parse: {e}"));
            drop(guard);
        }
    }

    #[test]
    fn crash_schedules_always_carry_the_kill() {
        for seed in (2..60).step_by(3) {
            let s = Schedule::generate(seed);
            assert_eq!(s.workload, Workload::CrashRestart);
            assert!(
                s.entries
                    .iter()
                    .any(|e| e.spec == "cache.disk.tmp_written=kill@1"),
                "seed {seed} crash schedule lost its kill entry"
            );
        }
    }

    #[test]
    fn generated_sites_are_unique_per_schedule() {
        // The failpoint table keys on site (first match wins), so a duplicate
        // site would silently shadow a later action — in a crash drill that
        // can defang the kill entry entirely.
        for seed in 0..120 {
            let s = Schedule::generate(seed);
            let mut sites: Vec<&str> = s
                .entries
                .iter()
                .map(|e| e.spec.split('=').next().unwrap_or_default())
                .collect();
            let n = sites.len();
            sites.sort_unstable();
            sites.dedup();
            assert_eq!(sites.len(), n, "seed {seed} has duplicate sites: {s:?}");
        }
    }

    #[test]
    fn replay_roundtrips() {
        for seed in 0..12 {
            let s = Schedule::generate(seed);
            let token = s.replay_string();
            let back = Schedule::parse_replay(&token).expect("token parses");
            assert_eq!(back, s);
        }
        assert!(Schedule::parse_replay("nope").is_err());
        assert!(Schedule::parse_replay("5:unknown:a=err").is_err());
        assert!(Schedule::parse_replay("5:serve:a=gibberish").is_err());
        // An empty spec (fully shrunk schedule) is valid.
        let empty = Schedule::parse_replay("7:pipeline:").expect("empty spec parses");
        assert!(empty.entries.is_empty());
    }
}
