//! The chaos driver: runs schedules against real `bootes` subprocesses and
//! checks the invariant oracles.
//!
//! Three workloads (chosen round-robin by seed, so any batch of ≥ 3 seeds
//! covers all of them):
//!
//! - **pipeline** — one-shot `bootes reorder` with faults armed at the
//!   graceful-degradation sites and a wall-clock budget. Oracles: exit 0
//!   (faults degrade, never fail), the output parses and preserves the
//!   input's shape and nnz.
//! - **serve** — a `bootes serve` daemon under fault load, driven by the
//!   retrying [`bootes_serve::Client`]. Oracles: every request is answered
//!   within the retry budget, non-degraded answers for identical payloads
//!   are bit-identical (cache hit ≡ recompute), the drain is clean (exit 0,
//!   accepted == completed on the final counters line).
//! - **crash-restart** — `bootes reorder` killed *inside* the cache's
//!   torn-write window (`cache.disk.tmp_written=kill@1` aborts without
//!   unwinding, the in-process equivalent of SIGKILL), then restarted on the
//!   same `--cache-dir`. Oracles: the restart exits 0, sweeps the orphaned
//!   temp file (none left behind), and both the recompute and the subsequent
//!   cache-hit run answer bit-identically to a fault-free reference run.
//!
//! A failing schedule is shrunk (see [`crate::shrink`]) and reported with a
//! minimal replay token.

use std::io::{BufRead, BufReader, Read};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use bootes_serve::protocol::{MatrixPayload, Request};
use bootes_serve::{Client, RetryPolicy};
use bootes_sparse::io::read_matrix_market;
use bootes_sparse::CsrMatrix;
use bootes_workloads::gen::{clustered, GenConfig};

use crate::oracle::Violation;
use crate::schedule::{Schedule, Workload};
use crate::shrink::shrink;

/// Per-subprocess wall-clock ceiling; exceeding it is a `hang` violation.
const SUBPROCESS_TIMEOUT: Duration = Duration::from_secs(120);

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Chaos batch configuration.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The `bootes` binary to drive (normally `std::env::current_exe()`).
    pub bin: PathBuf,
    /// Scratch directory for fixtures, caches, and sockets.
    pub scratch: PathBuf,
    /// Number of schedules to run.
    pub seeds: u64,
    /// First seed (schedules run `start_seed .. start_seed + seeds`).
    pub start_seed: u64,
    /// Requests per serve-workload run.
    pub requests: usize,
    /// Shrink failing schedules to a minimal repro (costs extra reruns).
    pub shrink: bool,
    /// Keep running the batch after a failing seed.
    pub keep_going: bool,
}

impl ChaosConfig {
    /// A default batch configuration for `bin`, scratched under the system
    /// temp directory.
    pub fn new(bin: PathBuf) -> ChaosConfig {
        ChaosConfig {
            bin,
            scratch: std::env::temp_dir().join(format!("bootes-chaos-{}", std::process::id())),
            seeds: 6,
            start_seed: 0,
            requests: 10,
            shrink: true,
            keep_going: false,
        }
    }
}

/// Outcome of one schedule (violations empty → passed).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// The generating seed.
    pub seed: u64,
    /// Workload name.
    pub workload: String,
    /// The armed failpoint spec.
    pub spec: String,
    /// Replay token for this exact schedule.
    pub replay: String,
    /// Violated invariants (empty → passed).
    pub violations: Vec<Violation>,
    /// Minimal failing replay token, when the schedule failed and shrinking
    /// was enabled.
    pub minimized: Option<String>,
    /// Subprocess reruns spent shrinking.
    pub shrink_reruns: usize,
}

/// Outcome of a whole batch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Per-schedule outcomes.
    pub runs: Vec<RunReport>,
    /// Total violations across the batch.
    pub violations: usize,
}

impl ChaosReport {
    /// Whether every schedule passed.
    pub fn passed(&self) -> bool {
        self.violations == 0
    }

    /// Serializes the report as JSON (the `--out` artifact CI uploads).
    ///
    /// # Errors
    ///
    /// Propagates the (in practice unreachable) serialization failure.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| e.to_string())
    }
}

/// Runs a batch of generated schedules (`start_seed .. start_seed + seeds`).
///
/// # Errors
///
/// Returns infrastructure errors (fixture generation, scratch I/O) — *not*
/// invariant violations, which land in the report.
pub fn run_batch(cfg: &ChaosConfig) -> Result<ChaosReport, String> {
    let fixture = ensure_fixture(cfg)?;
    let mut runs = Vec::new();
    let mut violations = 0;
    for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        let schedule = Schedule::generate(seed);
        let report = run_and_shrink(cfg, &fixture, &schedule)?;
        violations += report.violations.len();
        let stop = !report.violations.is_empty() && !cfg.keep_going;
        runs.push(report);
        if stop {
            break;
        }
    }
    Ok(ChaosReport { runs, violations })
}

/// Runs one schedule (replay path) and, on failure, shrinks it.
///
/// # Errors
///
/// Returns infrastructure errors only.
pub fn run_and_shrink(
    cfg: &ChaosConfig,
    fixture: &Path,
    schedule: &Schedule,
) -> Result<RunReport, String> {
    bootes_obs::counter_add("chaos.runs", 1);
    let violations = run_schedule(cfg, fixture, schedule)?;
    let mut minimized = None;
    let mut shrink_reruns = 0;
    if !violations.is_empty() {
        bootes_obs::counter_add("chaos.violations", violations.len() as u64);
        if cfg.shrink && !schedule.entries.is_empty() {
            let (min, reruns) = shrink(schedule, |candidate| {
                bootes_obs::counter_add("chaos.shrink_reruns", 1);
                run_schedule(cfg, fixture, candidate)
                    .map(|v| !v.is_empty())
                    .unwrap_or(false)
            });
            shrink_reruns = reruns;
            minimized = Some(min.replay_string());
        }
    }
    Ok(RunReport {
        seed: schedule.seed,
        workload: schedule.workload.name().to_string(),
        spec: schedule.spec_string(),
        replay: schedule.replay_string(),
        violations,
        minimized,
        shrink_reruns,
    })
}

/// Generates (once) the Matrix Market fixture the subprocess workloads read.
///
/// # Errors
///
/// Returns generation or I/O errors.
pub fn ensure_fixture(cfg: &ChaosConfig) -> Result<PathBuf, String> {
    std::fs::create_dir_all(&cfg.scratch)
        .map_err(|e| format!("create scratch {}: {e}", cfg.scratch.display()))?;
    let path = cfg.scratch.join("fixture.mtx");
    if !path.exists() {
        let m = fixture_matrix(7)?;
        let mut file =
            std::fs::File::create(&path).map_err(|e| format!("create {}: {e}", path.display()))?;
        bootes_sparse::io::write_matrix_market(&mut file, &m).map_err(|e| e.to_string())?;
    }
    Ok(path)
}

fn fixture_matrix(seed: u64) -> Result<CsrMatrix, String> {
    clustered(&GenConfig::new(96, 96).seed(seed), 4, 0.85).map_err(|e| e.to_string())
}

/// Runs one schedule and returns its violations.
///
/// # Errors
///
/// Returns infrastructure errors only.
pub fn run_schedule(
    cfg: &ChaosConfig,
    fixture: &Path,
    schedule: &Schedule,
) -> Result<Vec<Violation>, String> {
    let tag = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = cfg.scratch.join(format!("run-{}-{tag}", schedule.seed));
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let violations = match schedule.workload {
        Workload::Pipeline => run_pipeline(cfg, fixture, schedule, &dir),
        Workload::Serve => run_serve(cfg, schedule, &dir),
        Workload::CrashRestart => run_crash_restart(cfg, fixture, schedule, &dir),
    }?;
    if violations.is_empty() {
        // Bound scratch growth across a batch; failing run dirs are kept
        // for post-mortem inspection.
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(violations)
}

/// A faulted command: `bootes` with the schedule's spec and seed armed via
/// the environment. `faults: false` scrubs both variables so reference and
/// recovery runs are clean even under a polluted parent environment.
fn bootes_cmd(cfg: &ChaosConfig, schedule: &Schedule, faults: bool) -> Command {
    let mut cmd = Command::new(&cfg.bin);
    cmd.stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    if faults {
        cmd.env("BOOTES_FAILPOINTS", schedule.spec_string())
            .env("BOOTES_FAILPOINT_SEED", schedule.seed.to_string());
    } else {
        cmd.env_remove("BOOTES_FAILPOINTS")
            .env_remove("BOOTES_FAILPOINT_SEED");
    }
    cmd
}

/// Collects a child's output, killing it at [`SUBPROCESS_TIMEOUT`].
struct Finished {
    timed_out: bool,
    success: bool,
    code: String,
    stdout: String,
    stderr: String,
}

fn wait_collect(mut child: Child) -> Finished {
    // Drain the pipes concurrently: a child blocked on a full stderr pipe
    // would otherwise deadlock against our wait loop.
    let stdout = child.stdout.take().map(drain_pipe);
    let stderr = child.stderr.take().map(drain_pipe);
    let deadline = Instant::now() + SUBPROCESS_TIMEOUT;
    let mut timed_out = false;
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break Some(status),
            Ok(None) => {
                if Instant::now() >= deadline {
                    timed_out = true;
                    let _ = child.kill();
                    break child.wait().ok();
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break None,
        }
    };
    let join = |rx: Option<std::sync::mpsc::Receiver<String>>| {
        rx.and_then(|rx| rx.recv_timeout(Duration::from_secs(5)).ok())
            .unwrap_or_default()
    };
    Finished {
        timed_out,
        success: status
            .as_ref()
            .is_some_and(std::process::ExitStatus::success),
        code: status.map_or_else(|| "unknown".to_string(), |s| format!("{s}")),
        stdout: join(stdout),
        stderr: join(stderr),
    }
}

fn drain_pipe<R: Read + Send + 'static>(mut pipe: R) -> std::sync::mpsc::Receiver<String> {
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut buf = String::new();
        let _ = pipe.read_to_string(&mut buf);
        let _ = tx.send(buf);
    });
    rx
}

fn tail(s: &str) -> String {
    let lines: Vec<&str> = s.lines().rev().take(4).collect();
    lines.into_iter().rev().collect::<Vec<_>>().join(" | ")
}

/// The `bootes reorder` invocation every subprocess workload shares.
fn reorder_args(fixture: &Path, out: &Path, cache_dir: &Path) -> Vec<String> {
    vec![
        "reorder".to_string(),
        fixture.display().to_string(),
        "-o".to_string(),
        out.display().to_string(),
        "--algo".to_string(),
        "bootes".to_string(),
        "--cache-dir".to_string(),
        cache_dir.display().to_string(),
        "--time-budget-ms".to_string(),
        "30000".to_string(),
    ]
}

fn check_reorder_output(fixture: &Path, out: &Path, violations: &mut Vec<Violation>) {
    let parse = |p: &Path| -> Result<CsrMatrix, String> {
        let f = std::fs::File::open(p).map_err(|e| e.to_string())?;
        read_matrix_market(BufReader::new(f)).map_err(|e| e.to_string())
    };
    let input = match parse(fixture) {
        Ok(m) => m,
        Err(e) => {
            violations.push(Violation::new(
                "fixture",
                format!("unreadable fixture: {e}"),
            ));
            return;
        }
    };
    match parse(out) {
        Ok(m) => {
            if (m.nrows(), m.ncols(), m.nnz()) != (input.nrows(), input.ncols(), input.nnz()) {
                violations.push(Violation::new(
                    "output-shape",
                    format!(
                        "reordered output is {}x{} ({} nnz), input was {}x{} ({} nnz)",
                        m.nrows(),
                        m.ncols(),
                        m.nnz(),
                        input.nrows(),
                        input.ncols(),
                        input.nnz()
                    ),
                ));
            }
        }
        Err(e) => violations.push(Violation::new(
            "output-invalid",
            format!("{}: {e}", out.display()),
        )),
    }
}

fn run_pipeline(
    cfg: &ChaosConfig,
    fixture: &Path,
    schedule: &Schedule,
    dir: &Path,
) -> Result<Vec<Violation>, String> {
    let out = dir.join("out.mtx");
    let cache = dir.join("cache");
    let mut cmd = bootes_cmd(cfg, schedule, true);
    cmd.args(reorder_args(fixture, &out, &cache));
    let child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", cfg.bin.display()))?;
    let fin = wait_collect(child);
    let mut violations = Vec::new();
    if fin.timed_out {
        violations.push(Violation::new(
            "hang",
            format!("pipeline run exceeded {SUBPROCESS_TIMEOUT:?}"),
        ));
        return Ok(violations);
    }
    if !fin.success {
        // Budget ceilings and injected faults must degrade, never fail: any
        // nonzero exit (including an escaped panic's 101 or an abort) is a
        // violation for this workload.
        violations.push(Violation::new(
            "exit-status",
            format!(
                "pipeline run exited {} — stdout: {} — stderr: {}",
                fin.code,
                tail(&fin.stdout),
                tail(&fin.stderr)
            ),
        ));
        return Ok(violations);
    }
    check_reorder_output(fixture, &out, &mut violations);
    Ok(violations)
}

fn run_crash_restart(
    cfg: &ChaosConfig,
    fixture: &Path,
    schedule: &Schedule,
    dir: &Path,
) -> Result<Vec<Violation>, String> {
    let cache = dir.join("cache");
    let ref_cache = dir.join("ref-cache");
    let ref_out = dir.join("ref.mtx");
    let mut violations = Vec::new();

    // Fault-free reference on a private cache dir.
    let mut cmd = bootes_cmd(cfg, schedule, false);
    cmd.args(reorder_args(fixture, &ref_out, &ref_cache));
    let fin = wait_collect(cmd.spawn().map_err(|e| e.to_string())?);
    if !fin.success {
        violations.push(Violation::new(
            "reference-run",
            format!(
                "fault-free reference exited {} — {}",
                fin.code,
                tail(&fin.stderr)
            ),
        ));
        return Ok(violations);
    }

    // Crash run: the kill failpoint aborts inside the torn-write window.
    // Whether it actually fired (nonzero exit) is not asserted — a shrunk
    // schedule may have dropped the kill, and then this is just a normal run.
    let crash_out = dir.join("crash.mtx");
    let mut cmd = bootes_cmd(cfg, schedule, true);
    cmd.args(reorder_args(fixture, &crash_out, &cache));
    let fin = wait_collect(cmd.spawn().map_err(|e| e.to_string())?);
    if fin.timed_out {
        violations.push(Violation::new("hang", "crash run exceeded the timeout"));
        return Ok(violations);
    }

    // Restart on the same cache dir: must recover fully.
    let out1 = dir.join("restart.mtx");
    let mut cmd = bootes_cmd(cfg, schedule, false);
    cmd.args(reorder_args(fixture, &out1, &cache));
    let fin = wait_collect(cmd.spawn().map_err(|e| e.to_string())?);
    if !fin.success {
        violations.push(Violation::new(
            "restart-failed",
            format!("restart exited {} — {}", fin.code, tail(&fin.stderr)),
        ));
        return Ok(violations);
    }
    if let Some(orphan) = find_tmp_file(&cache) {
        violations.push(Violation::new(
            "torn-entry-left",
            format!("stale temp file survived the restart: {orphan}"),
        ));
    }
    check_bitwise_match(&ref_out, &out1, "recovery-divergence", &mut violations);

    // One more run answers from the recovered cache: a hit must be
    // bit-identical to the recompute.
    let out2 = dir.join("cached.mtx");
    let mut cmd = bootes_cmd(cfg, schedule, false);
    cmd.args(reorder_args(fixture, &out2, &cache));
    let fin = wait_collect(cmd.spawn().map_err(|e| e.to_string())?);
    if !fin.success {
        violations.push(Violation::new(
            "cached-run-failed",
            format!("cache-hit run exited {} — {}", fin.code, tail(&fin.stderr)),
        ));
        return Ok(violations);
    }
    check_bitwise_match(&ref_out, &out2, "cache-divergence", &mut violations);
    Ok(violations)
}

/// First `.*.tmp` left anywhere in the cache dir, as a display string.
fn find_tmp_file(cache: &Path) -> Option<String> {
    let entries = std::fs::read_dir(cache).ok()?;
    for entry in entries.filter_map(|e| e.ok()) {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') && name.ends_with(".tmp") {
            return Some(entry.path().display().to_string());
        }
    }
    None
}

fn check_bitwise_match(reference: &Path, got: &Path, oracle: &str, out: &mut Vec<Violation>) {
    match (std::fs::read(reference), std::fs::read(got)) {
        (Ok(a), Ok(b)) if a == b => {}
        (Ok(_), Ok(_)) => out.push(Violation::new(
            oracle,
            format!(
                "{} differs bytewise from the fault-free reference {}",
                got.display(),
                reference.display()
            ),
        )),
        (Err(e), _) => out.push(Violation::new(oracle, format!("read reference: {e}"))),
        (_, Err(e)) => out.push(Violation::new(oracle, format!("read output: {e}"))),
    }
}

fn run_serve(cfg: &ChaosConfig, schedule: &Schedule, dir: &Path) -> Result<Vec<Violation>, String> {
    let sock = dir.join("chaos.sock");
    let mut cmd = bootes_cmd(cfg, schedule, true);
    cmd.args([
        "serve",
        "--listen",
        &format!("unix:{}", sock.display()),
        "--serve-workers",
        "2",
        "--queue-cap",
        "16",
        "--drain-grace-ms",
        "5000",
    ]);
    let mut child = cmd.spawn().map_err(|e| format!("spawn serve: {e}"))?;
    let mut violations = Vec::new();

    // Readiness line; a daemon that dies at startup yields EOF, not a hang.
    let mut stdout = BufReader::new(
        child
            .stdout
            .take()
            .ok_or("serve child has no stdout pipe")?,
    );
    let mut line = String::new();
    let addr = match stdout.read_line(&mut line) {
        Ok(n) if n > 0 && line.contains("listening on ") => line
            .trim()
            .rsplit(' ')
            .next()
            .unwrap_or_default()
            .to_string(),
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            violations.push(Violation::new(
                "daemon-startup",
                format!("no readiness line (got {line:?})"),
            ));
            return Ok(violations);
        }
    };
    let stderr_rx = child.stderr.take().map(drain_pipe);
    // The readiness line came off this BufReader, so wait_collect below has
    // no stdout pipe left; drain the remainder (the drained-counters line)
    // through a thread the same way.
    let stdout_rx = drain_pipe(stdout);

    drive_serve_requests(cfg, schedule, &addr, &mut violations);

    // Drain and verify the exit. The shutdown request itself retries on
    // transport faults (serve.accept can drop the shutter's connection too).
    let policy = RetryPolicy {
        max_attempts: 8,
        base_ms: 5,
        max_backoff_ms: 100,
        jitter_seed: schedule.seed,
    };
    match Client::connect(&addr) {
        Ok(mut shutter) => {
            let _ = shutter.set_read_timeout(Some(Duration::from_secs(60)));
            let req = Request {
                id: 999_999,
                op: "shutdown".to_string(),
                ..Request::default()
            };
            if let Err(e) = shutter.request_with_retry(&req, &policy) {
                violations.push(Violation::new("drain", format!("shutdown unanswered: {e}")));
            }
        }
        Err(e) => violations.push(Violation::new("drain", format!("shutdown connect: {e}"))),
    }
    let fin = wait_collect(child);
    if fin.timed_out {
        violations.push(Violation::new("hang", "daemon did not exit after drain"));
        return Ok(violations);
    }
    if !fin.success {
        violations.push(Violation::new(
            "exit-status",
            format!(
                "daemon exited {} — stderr: {}{}",
                fin.code,
                tail(&fin.stderr),
                stderr_rx
                    .and_then(|rx| rx.recv_timeout(Duration::from_secs(2)).ok())
                    .map(|s| format!(" | {}", tail(&s)))
                    .unwrap_or_default()
            ),
        ));
    }
    // The drained counters line: every admitted request must have executed.
    // It arrives via stdout_rx — the readiness read consumed the stdout pipe,
    // so wait_collect had nothing left to capture there.
    let stdout_text = stdout_rx
        .recv_timeout(Duration::from_secs(5))
        .unwrap_or_default();
    let mut drained = stdout_text.lines().filter(|l| l.contains("drained:"));
    match drained.next() {
        Some(l) => {
            let nums: Vec<u64> = l
                .split(|c: char| !c.is_ascii_digit())
                .filter(|s| !s.is_empty())
                .filter_map(|s| s.parse().ok())
                .collect();
            if let (Some(&accepted), Some(&completed)) = (nums.first(), nums.get(1)) {
                if accepted != completed {
                    violations.push(Violation::new(
                        "drain-imbalance",
                        format!("{accepted} accepted but only {completed} completed: {l}"),
                    ));
                }
            }
        }
        None => violations.push(Violation::new(
            "drain",
            "no drained-counters line on stdout",
        )),
    }
    Ok(violations)
}

/// Sends the request load and checks the per-request oracles.
fn drive_serve_requests(
    cfg: &ChaosConfig,
    schedule: &Schedule,
    addr: &str,
    violations: &mut Vec<Violation>,
) {
    let payloads: Vec<MatrixPayload> = [3u64, 5, 7]
        .iter()
        .filter_map(|&s| fixture_matrix(s).ok())
        .map(|m| MatrixPayload::from_csr(&m))
        .collect();
    if payloads.is_empty() {
        violations.push(Violation::new("fixture", "payload generation failed"));
        return;
    }
    let policy = RetryPolicy {
        max_attempts: 8,
        base_ms: 5,
        max_backoff_ms: 100,
        jitter_seed: schedule.seed,
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            violations.push(Violation::new("connect", e.to_string()));
            return;
        }
    };
    let _ = client.set_read_timeout(Some(Duration::from_secs(60)));
    // First non-degraded permutation per payload: later non-degraded answers
    // (cache hits or recomputes alike) must be bit-identical — the pipeline
    // is deterministic and the cache never stores degraded artifacts.
    let mut golden: Vec<Option<Vec<usize>>> = vec![None; payloads.len()];
    for i in 0..cfg.requests {
        let slot = i % payloads.len();
        let op = if i % 4 == 3 { "decide" } else { "preprocess" };
        let req = Request {
            id: i as u64 + 1,
            op: op.to_string(),
            matrix: Some(payloads[slot].clone()),
            // A generous deadline on part of the load keeps the deadline
            // machinery exercised without making slow-but-correct answers
            // count as violations.
            deadline_ms: if i % 3 == 0 { Some(60_000) } else { None },
            ..Request::default()
        };
        match client.request_with_retry(&req, &policy) {
            Ok(resp) => {
                if !resp.ok {
                    // A typed failure is an *answer* (the injected-fault
                    // paths produce them); only silence is a violation.
                    continue;
                }
                if op == "preprocess" && !resp.degraded {
                    if let Some(perm) = &resp.permutation {
                        match &golden[slot] {
                            None => golden[slot] = Some(perm.clone()),
                            Some(g) if g == perm => {}
                            Some(_) => violations.push(Violation::new(
                                "cache-divergence",
                                format!(
                                    "request {} (payload {slot}, cache_hit={}) returned a \
                                     permutation differing from an earlier non-degraded answer",
                                    req.id, resp.cache_hit
                                ),
                            )),
                        }
                    }
                }
            }
            Err(e) => {
                violations.push(Violation::new(
                    "unanswered-request",
                    format!("request {}: {e}", req.id),
                ));
                // The connection may be wedged; a fresh one keeps the rest
                // of the load meaningful.
                if let Ok(c) = Client::connect(addr) {
                    client = c;
                    let _ = client.set_read_timeout(Some(Duration::from_secs(60)));
                }
            }
        }
    }
}
