//! Invariant oracles checked after every chaos run.

use serde::{Deserialize, Serialize};

/// One violated invariant. A run with an empty violation list passed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant failed (stable machine-readable name, e.g.
    /// `exit-status`, `unanswered-request`, `torn-entry-left`,
    /// `cache-divergence`, `drain-imbalance`, `hang`).
    pub oracle: String,
    /// Human-readable evidence.
    pub detail: String,
}

impl Violation {
    /// Builds a violation.
    pub fn new(oracle: impl Into<String>, detail: impl Into<String>) -> Violation {
        Violation {
            oracle: oracle.into(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}
