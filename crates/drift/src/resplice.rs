//! Splicing changed rows into a donor permutation.

use bootes_sparse::{CsrMatrix, Permutation};

/// Failures of the incremental update path. All variants are recoverable:
/// the pipeline answers any of them with a full recompute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriftError {
    /// A `BOOTES_FAILPOINTS` fault was injected at `drift.resplice`.
    Injected(String),
    /// The inputs cannot be respliced (donor length mismatch, changed-row
    /// index out of range).
    Invalid(String),
}

impl std::fmt::Display for DriftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriftError::Injected(s) => write!(f, "injected fault: {s}"),
            DriftError::Invalid(s) => write!(f, "invalid resplice input: {s}"),
        }
    }
}

impl std::error::Error for DriftError {}

/// Indices of the rows whose pattern hash differs between the donor and the
/// incoming matrix, in ascending order. Vectors of different lengths mean
/// the matrices are not comparable row-by-row, so *every* row is reported
/// changed (the caller's drift threshold then forces a full recompute).
pub fn changed_rows(donor_hashes: &[u64], new_hashes: &[u64]) -> Vec<usize> {
    if donor_hashes.len() != new_hashes.len() {
        return (0..new_hashes.len()).collect();
    }
    donor_hashes
        .iter()
        .zip(new_hashes)
        .enumerate()
        .filter_map(|(i, (d, n))| (d != n).then_some(i))
        .collect()
}

/// Splices the `changed` rows of `a` into the `donor` permutation.
///
/// Unchanged rows keep their donor order. Each changed row is re-clustered
/// against the *unchanged* rows by exact column-support Jaccard, restricted
/// to rows that share at least one column (found through an inverted index
/// over the changed rows' columns, so the cost is proportional to the
/// changed rows' neighborhoods, not to `nnz · siglen`): it is placed
/// immediately after the unchanged row it is most similar to (its
/// *anchor*), which in a clustered donor order is a row of its own cluster.
/// A changed row sharing no column with any unchanged row keeps its donor
/// position — for a small drift the donor position is still the best
/// available guess, and strictly better than exiling the row to the end of
/// the order.
///
/// Deterministic: anchors tie-break by donor position then index, multiple
/// rows behind one anchor emit by descending similarity then ascending
/// index. The result is validated as a bijection before it is returned.
///
/// # Errors
///
/// [`DriftError::Invalid`] when `donor.len() != a.nrows()` or a changed
/// index is out of range; [`DriftError::Injected`] under an armed
/// `drift.resplice` failpoint.
pub fn resplice(
    a: &CsrMatrix,
    donor: &Permutation,
    changed: &[usize],
) -> Result<Permutation, DriftError> {
    bootes_guard::fail_point("drift.resplice").map_err(|e| DriftError::Injected(e.to_string()))?;
    let n = a.nrows();
    if donor.len() != n {
        return Err(DriftError::Invalid(format!(
            "donor permutation length {} != matrix rows {n}",
            donor.len()
        )));
    }
    let mut is_changed = vec![false; n];
    for &r in changed {
        if r >= n {
            return Err(DriftError::Invalid(format!(
                "changed row {r} out of range for {n} rows"
            )));
        }
        is_changed[r] = true;
    }
    if changed.is_empty() {
        return Ok(donor.clone());
    }

    // Position of each old row in the donor order, for deterministic anchor
    // tie-breaks and for keeping anchorless rows in place.
    let inv = donor.inverse();
    let donor_pos = inv.as_slice();

    // Inverted index over the columns the changed rows touch, unchanged rows
    // only: every unchanged row sharing a column with a changed row is an
    // anchor candidate; rows sharing nothing have Jaccard 0 and are never
    // better than keeping the donor position.
    let mut col_used = vec![false; a.ncols()];
    for &cr in changed {
        for &col in a.row(cr).0 {
            col_used[col] = true;
        }
    }
    let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); a.ncols()];
    for (r, &r_changed) in is_changed.iter().enumerate() {
        if r_changed {
            continue;
        }
        for &col in a.row(r).0 {
            if col_used[col] {
                col_rows[col].push(r);
            }
        }
    }

    // anchor[r] = (similarity, donor position of anchor, anchor row)
    let mut anchor: Vec<Option<(f64, usize, usize)>> = vec![None; n];
    let mut overlap = vec![0usize; n];
    let mut touched: Vec<usize> = Vec::new();
    for &cr in changed {
        let (cols, _) = a.row(cr);
        for &col in cols {
            for &u in &col_rows[col] {
                if overlap[u] == 0 {
                    touched.push(u);
                }
                overlap[u] += 1;
            }
        }
        let mut best: Option<(f64, usize, usize)> = None;
        for &u in &touched {
            let inter = overlap[u] as f64;
            let union = (cols.len() + a.row(u).0.len()) as f64 - inter;
            let sim = if union > 0.0 { inter / union } else { 0.0 };
            let cand = (sim, donor_pos[u], u);
            // Higher similarity wins; then the earlier donor position; then
            // the smaller row index — a total order, so the choice does not
            // depend on the candidate iteration order.
            let better = match best {
                None => true,
                Some((sim, pos, row)) => {
                    cand.0 > sim
                        || (cand.0 == sim && (cand.1 < pos || (cand.1 == pos && cand.2 < row)))
                }
            };
            if better {
                best = Some(cand);
            }
        }
        anchor[cr] = best;
        for &u in &touched {
            overlap[u] = 0;
        }
        touched.clear();
    }

    // Changed rows that found an anchor move next to it; the rest stay at
    // their donor position (treated as unchanged below).
    let mut behind: Vec<Vec<(f64, usize)>> = vec![Vec::new(); n];
    for &c in changed {
        match anchor[c] {
            Some((sim, _, u)) => behind[u].push((sim, c)),
            None => is_changed[c] = false,
        }
    }
    for group in &mut behind {
        group.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
    }

    let mut out = Vec::with_capacity(n);
    for new in 0..n {
        let old = donor.old_index(new);
        if is_changed[old] {
            continue; // re-emitted behind its anchor
        }
        out.push(old);
        for &(_, c) in &behind[old] {
            out.push(c);
        }
    }
    Permutation::try_new(out).map_err(|e| DriftError::Invalid(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootes_sparse::CooMatrix;

    /// Two clear clusters: rows 0..4 share columns 0..6, rows 4..8 share
    /// columns 10..16.
    fn two_clusters() -> CsrMatrix {
        let mut coo = CooMatrix::new(8, 20);
        for r in 0..4 {
            for c in 0..6 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        for r in 4..8 {
            for c in 10..16 {
                coo.push(r, c, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    #[test]
    fn changed_rows_diffs_and_handles_length_mismatch() {
        assert_eq!(changed_rows(&[1, 2, 3], &[1, 9, 3]), vec![1]);
        assert!(changed_rows(&[1, 2], &[1, 2]).is_empty());
        assert_eq!(changed_rows(&[1], &[1, 2, 3]), vec![0, 1, 2]);
    }

    #[test]
    fn empty_delta_returns_the_donor_verbatim() {
        let a = two_clusters();
        let donor = Permutation::try_new(vec![7, 6, 5, 4, 3, 2, 1, 0]).unwrap();
        let out = resplice(&a, &donor, &[]).unwrap();
        assert_eq!(out, donor);
    }

    #[test]
    fn changed_row_lands_next_to_its_cluster() {
        // Donor order groups cluster B then cluster A; row 2 (cluster A)
        // "changed" and must be respliced among the cluster-A block, not
        // left where the donor scan happens to put it.
        let a = two_clusters();
        let donor = Permutation::try_new(vec![4, 5, 6, 7, 2, 0, 1, 3]).unwrap();
        let out = resplice(&a, &donor, &[2]).unwrap();
        let pos: Vec<usize> = (0..8)
            .map(|old| out.as_slice().iter().position(|&o| o == old).unwrap())
            .collect();
        // Row 2 sits somewhere inside the cluster-A half (positions 4..8).
        assert!(pos[2] >= 4, "row 2 at {} in {:?}", pos[2], out.as_slice());
        // Still a bijection over all 8 rows.
        let mut sorted = out.as_slice().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn resplice_is_deterministic() {
        let a = two_clusters();
        let donor = Permutation::try_new(vec![4, 5, 6, 7, 0, 1, 2, 3]).unwrap();
        let x = resplice(&a, &donor, &[1, 6]).unwrap();
        let y = resplice(&a, &donor, &[1, 6]).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn invalid_inputs_error_instead_of_panicking() {
        let a = two_clusters();
        let short = Permutation::try_new(vec![0, 1, 2]).unwrap();
        assert!(matches!(
            resplice(&a, &short, &[0]),
            Err(DriftError::Invalid(_))
        ));
        let donor = Permutation::identity(8);
        assert!(matches!(
            resplice(&a, &donor, &[99]),
            Err(DriftError::Invalid(_))
        ));
    }

    #[test]
    fn injected_fault_surfaces_as_drift_error() {
        let _fp = bootes_guard::ScopedFailpoints::arm("drift.resplice=err").unwrap();
        let a = two_clusters();
        let donor = Permutation::identity(8);
        assert!(matches!(
            resplice(&a, &donor, &[0]),
            Err(DriftError::Injected(_))
        ));
    }
}
