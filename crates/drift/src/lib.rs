#![warn(missing_docs)]
//! Incremental reordering for drifting sparsity patterns.
//!
//! Real iterative-solver and GNN-training workloads re-present *near*-
//! identical matrices step after step: a few rows gain or lose a nonzero,
//! everything else is unchanged. An exact fingerprint cache (`bootes-cache`)
//! misses on every such step and pays the full spectral-reorder cost again.
//! This crate closes that gap with three pieces:
//!
//! 1. [`DriftConfig`] — the knobs: a MinHash sketch configuration (`siglen`,
//!    `seed`), a donor similarity `floor`, and a rows-changed-fraction
//!    `threshold` past which patching is abandoned for a full recompute.
//! 2. [`SimilarityIndex`] — ranks lightweight candidate views of the cached
//!    [`SketchArtifact`]s (whole-matrix MinHash sketches, stored by the
//!    pipeline alongside every permutation) against the incoming matrix's
//!    sketch and returns the nearest *donor* whose estimated Jaccard
//!    similarity clears the floor.
//! 3. [`resplice`] — given the donor's permutation and the set of rows whose
//!    pattern changed, re-clusters only those rows (exact column-support
//!    Jaccard against the unchanged rows sharing a column, via an inverted
//!    index scoped to the changed rows' columns) and splices them next to
//!    their most similar anchors in the donor order, yielding a valid
//!    permutation without touching the eigensolver.
//!
//! The pipeline integration lives in `bootes-core`: on an exact reorder-key
//! miss it consults the index, resplices below the threshold, and records
//! the decision in `ReorderStats` (`donor_fingerprint`, `rows_respliced`,
//! `drift_fallback`). Counters: `drift.donor_hits`, `drift.resplices`,
//! `drift.fallbacks` (see the `bootes-obs` metric catalog).

pub mod index;
pub mod resplice;

use bootes_cache::SketchArtifact;
use bootes_reorder::lsh::MatrixSketch;
use bootes_sparse::{CsrMatrix, Fnv1a};

pub use index::{DonorMatch, SimilarityIndex};
pub use resplice::{changed_rows, resplice, DriftError};

/// Configuration of the drift donor path.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DriftConfig {
    /// Rows-changed fraction above which the resplice is abandoned and the
    /// permutation fully recomputed. `0.0` always falls back (any change is
    /// too much); `1.0` never does.
    pub threshold: f64,
    /// Minimum estimated whole-matrix Jaccard similarity for a cached entry
    /// to qualify as a donor. Below the floor the lookup reports no donor.
    pub floor: f64,
    /// MinHash signature length of the similarity sketches. Longer
    /// signatures sharpen the Jaccard estimate at linear cost in sketch
    /// compute and storage.
    pub siglen: usize,
    /// Seed of the MinHash hash family. Sketches from different seeds are
    /// incomparable, so the seed is part of the sketch cache key.
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 0.25,
            floor: 0.6,
            siglen: 96,
            seed: 0xB007E5,
        }
    }
}

impl DriftConfig {
    /// Sets the fallback threshold (rows-changed fraction).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the donor similarity floor.
    pub fn with_floor(mut self, floor: f64) -> Self {
        self.floor = floor;
        self
    }

    /// Sets the MinHash signature length.
    pub fn with_siglen(mut self, siglen: usize) -> Self {
        self.siglen = siglen.max(1);
        self
    }

    /// Sets the MinHash seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The drift decision: `true` when `changed` out of `nrows` rows exceed
    /// the threshold fraction and the donor must be abandoned for a full
    /// recompute. An empty delta never falls back; an empty matrix never
    /// falls back (there is nothing to recompute).
    pub fn should_fallback(&self, changed: usize, nrows: usize) -> bool {
        if changed == 0 || nrows == 0 {
            return false;
        }
        changed as f64 / nrows as f64 > self.threshold
    }

    /// Hash of the sketch-affecting knobs (`siglen`, `seed`) — the `config`
    /// component of sketch cache keys. `threshold` and `floor` are runtime
    /// decisions that do not change what a sketch *is*, so they are
    /// deliberately excluded: tightening the threshold must not orphan every
    /// stored sketch.
    pub fn sketch_config_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("drift.sketch")
            .write_u64(self.siglen as u64)
            .write_u64(self.seed);
        h.finish()
    }
}

/// FNV-1a hash of each row's column-index pattern. Two rows hash equal iff
/// (modulo FNV collisions) their column supports are identical, so comparing
/// the vectors of two same-shape matrices yields exactly the rows that
/// drifted.
pub fn row_pattern_hashes(a: &CsrMatrix) -> Vec<u64> {
    (0..a.nrows())
        .map(|r| {
            let (cols, _) = a.row(r);
            let mut h = Fnv1a::new();
            for &c in cols {
                h.write_u64(c as u64);
            }
            h.finish()
        })
        .collect()
}

/// Computes the [`SketchArtifact`] of `a` under `cfg` — the entry the
/// pipeline stores alongside every cached permutation so later near-identical
/// matrices can find it.
pub fn sketch_of(a: &CsrMatrix, cfg: &DriftConfig) -> SketchArtifact {
    let sketch = MatrixSketch::compute(a, cfg.siglen, cfg.seed);
    SketchArtifact {
        nrows: a.nrows(),
        ncols: a.ncols(),
        nnz: a.nnz(),
        siglen: cfg.siglen,
        seed: cfg.seed,
        sketch: sketch.values().to_vec(),
        row_hashes: row_pattern_hashes(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bootes_sparse::CooMatrix;

    fn small() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 6);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 3, 1.0).unwrap();
        coo.push(2, 5, 1.0).unwrap();
        coo.to_csr()
    }

    #[test]
    fn row_hashes_detect_pattern_changes_only() {
        let a = small();
        let mut coo = CooMatrix::new(3, 6);
        coo.push(0, 0, 9.0).unwrap(); // value change only
        coo.push(0, 3, 9.0).unwrap();
        coo.push(2, 4, 1.0).unwrap(); // pattern change
        let b = coo.to_csr();
        let ha = row_pattern_hashes(&a);
        let hb = row_pattern_hashes(&b);
        assert_eq!(ha[0], hb[0], "values do not affect the pattern hash");
        assert_eq!(ha[1], hb[1], "empty rows agree");
        assert_ne!(ha[2], hb[2], "moved nonzero changes the hash");
    }

    #[test]
    fn fallback_decision_honors_threshold_edges() {
        let zero = DriftConfig::default().with_threshold(0.0);
        let one = DriftConfig::default().with_threshold(1.0);
        for changed in 1..=10usize {
            assert!(zero.should_fallback(changed, 10));
            assert!(!one.should_fallback(changed, 10));
        }
        assert!(!zero.should_fallback(0, 10), "no delta, no fallback");
        let mid = DriftConfig::default().with_threshold(0.25);
        assert!(!mid.should_fallback(2, 10));
        assert!(mid.should_fallback(3, 10));
    }

    #[test]
    fn sketch_config_hash_tracks_sketch_knobs_only() {
        let base = DriftConfig::default();
        assert_eq!(
            base.sketch_config_hash(),
            base.clone()
                .with_threshold(0.9)
                .with_floor(0.1)
                .sketch_config_hash()
        );
        assert_ne!(
            base.sketch_config_hash(),
            base.clone().with_siglen(32).sketch_config_hash()
        );
        assert_ne!(
            base.sketch_config_hash(),
            base.clone().with_seed(1).sketch_config_hash()
        );
    }

    #[test]
    fn sketch_of_matches_direct_computation() {
        let a = small();
        let cfg = DriftConfig::default().with_siglen(16);
        let art = sketch_of(&a, &cfg);
        assert_eq!(art.nrows, 3);
        assert_eq!(art.ncols, 6);
        assert_eq!(art.nnz, 3);
        assert_eq!(
            art.sketch,
            MatrixSketch::compute(&a, 16, cfg.seed).values().to_vec()
        );
        assert_eq!(art.row_hashes, row_pattern_hashes(&a));
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = DriftConfig::default().with_threshold(0.5).with_floor(0.75);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: DriftConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
