//! Ranking cached sketches to find the nearest donor.

use bootes_cache::SketchCandidate;
use bootes_reorder::lsh::MatrixSketch;

/// The chosen donor: its pattern hash and the estimated similarity that
/// qualified it. The donor's per-row hashes (needed to compute the changed
/// set) are fetched from the cache afterwards — only for the winner, never
/// for every candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct DonorMatch {
    /// Pattern hash of the donor matrix (the donor's cache-key pattern).
    pub pattern: u64,
    /// Estimated whole-matrix Jaccard similarity to the query.
    pub similarity: f64,
}

/// A one-shot similarity index over the cached sketches of one sketch
/// configuration.
///
/// Built per lookup from [`bootes_cache::Cache::sketch_candidates`]; the
/// candidate set is small (one sketch per distinct cached pattern), so a
/// linear scan over `siglen`-word signatures is cheaper than maintaining LSH
/// band tables across processes.
pub struct SimilarityIndex {
    entries: Vec<SketchCandidate>,
}

impl SimilarityIndex {
    /// Builds the index from lightweight sketch candidates.
    pub fn new(entries: Vec<SketchCandidate>) -> Self {
        SimilarityIndex { entries }
    }

    /// Number of candidate sketches.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no candidates.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The most similar candidate to `query` that (a) sketches a matrix of
    /// exactly `nrows x ncols` (a donor permutation must be directly
    /// spliceable), (b) is not the query's own pattern, and (c) clears the
    /// similarity `floor`. Ties break toward the smaller pattern hash so the
    /// choice is deterministic regardless of candidate order. Returns `None`
    /// when nothing qualifies — never a donor below the floor.
    pub fn best_donor(
        &self,
        query: &MatrixSketch,
        nrows: usize,
        ncols: usize,
        exclude_pattern: u64,
        floor: f64,
    ) -> Option<DonorMatch> {
        let mut best: Option<(f64, u64)> = None;
        for c in &self.entries {
            if c.pattern == exclude_pattern || c.nrows != nrows || c.ncols != ncols {
                continue;
            }
            let candidate = MatrixSketch::from_values(c.sig.clone());
            let sim = query.estimate_jaccard(&candidate);
            if sim < floor {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bsim, bpat)) => sim > *bsim || (sim == *bsim && c.pattern < *bpat),
            };
            if better {
                best = Some((sim, c.pattern));
            }
        }
        best.map(|(similarity, pattern)| DonorMatch {
            pattern,
            similarity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sketch_of, DriftConfig};
    use bootes_sparse::{CooMatrix, CsrMatrix};

    fn banded(n: usize, shift: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for d in 0..3 {
                coo.push(r, (r + d + shift) % n, 1.0).unwrap();
            }
        }
        coo.to_csr()
    }

    fn perturbed(a: &CsrMatrix, rows: &[usize]) -> CsrMatrix {
        let n = a.nrows();
        let mut coo = CooMatrix::new(n, a.ncols());
        for r in 0..n {
            let (cols, vals) = a.row(r);
            let drop = rows.contains(&r);
            for (i, (&c, &v)) in cols.iter().zip(vals).enumerate() {
                if drop && i == 0 {
                    coo.push(r, (c + 7) % a.ncols(), v).unwrap();
                } else {
                    coo.push(r, c, v).unwrap();
                }
            }
        }
        coo.to_csr()
    }

    #[test]
    fn near_identical_matrix_beats_unrelated_one() {
        let cfg = DriftConfig::default();
        let base = banded(64, 0);
        let near = perturbed(&base, &[3, 10]);
        let far = banded(64, 29);
        let index = SimilarityIndex::new(vec![
            sketch_of(&near, &cfg).candidate(1),
            sketch_of(&far, &cfg).candidate(2),
        ]);
        let query = bootes_reorder::lsh::MatrixSketch::from_values(sketch_of(&base, &cfg).sketch);
        let m = index.best_donor(&query, 64, 64, 0, cfg.floor).unwrap();
        assert_eq!(m.pattern, 1, "the drifted twin is the donor");
        assert!(m.similarity >= cfg.floor);
    }

    #[test]
    fn floor_shape_and_self_exclusion_are_enforced() {
        let cfg = DriftConfig::default();
        let base = banded(32, 0);
        let near = perturbed(&base, &[1]);
        let other_shape = banded(16, 0);
        let index = SimilarityIndex::new(vec![
            sketch_of(&near, &cfg).candidate(1),
            sketch_of(&other_shape, &cfg).candidate(2),
        ]);
        let query = bootes_reorder::lsh::MatrixSketch::from_values(sketch_of(&base, &cfg).sketch);
        // A floor of 1.01 can never be cleared.
        assert!(index.best_donor(&query, 32, 32, 0, 1.01).is_none());
        // The query's own pattern never donates to itself.
        assert!(index.best_donor(&query, 32, 32, 1, cfg.floor).is_none());
        // Shape mismatches are filtered before similarity is even estimated:
        // with only the 32x32 twin as a candidate, a 16x16 query finds
        // nothing even at floor 0.
        let only_near = SimilarityIndex::new(vec![sketch_of(&near, &cfg).candidate(1)]);
        assert!(only_near.best_donor(&query, 16, 16, 0, 0.0).is_none());
        assert!(!index.is_empty() && index.len() == 2);
    }
}
