//! Offline stand-in for `serde_json`.
//!
//! Renders and parses JSON text over the vendored [`serde::Value`] tree.
//! Only the surface the Bootes workspace actually uses is provided:
//! [`to_string`], [`to_string_pretty`], [`to_vec`], [`from_str`],
//! [`from_slice`], and the [`Error`] type.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// Error produced while rendering or parsing JSON.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Serialize `value` to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    T::deserialize(&v).map_err(Error::from)
}

/// Deserialize a value of type `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(e.to_string()))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Ensure floats keep a fractional marker so they round-trip
                // as floats rather than integers.
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::msg(format!(
                "unexpected character '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Handle surrogate pairs for completeness.
                            let ch = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(ch.ok_or_else(|| Error::msg("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(Error::msg("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error::msg(e.to_string()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error::msg(e.to_string()))?;
        let code = u32::from_str_radix(hex, 16).map_err(|e| Error::msg(e.to_string()))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::msg(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| Error::msg(e.to_string()))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| Error::msg(e.to_string()))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|e| Error::msg(e.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_objects_and_strings() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("a\"b".to_string())),
            ("n".to_string(), Value::UInt(7)),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"name\": \"a\\\"b\""));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back.get("n").and_then(Value::as_u64), Some(7));
    }

    #[test]
    fn floats_round_trip_as_floats() {
        let s = to_string(&2.0_f64).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn parses_nested_and_escapes() {
        let v: Value = from_str("{\"a\": [1, -2, 3.5, true, null], \"s\": \"x\\u0041\"}").unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("xA"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 5);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("{} x").is_err());
    }
}
