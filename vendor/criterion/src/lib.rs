//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the harness surface the Bootes benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`Bencher::iter`] — and reports mean wall-time per
//! iteration on stdout. There is no statistical analysis, outlier
//! rejection, or HTML report; timings are indicative only.

use std::time::{Duration, Instant};

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(10, Duration::from_millis(100), Duration::from_millis(500));
        f(&mut b);
        b.report(&id.label());
        self
    }
}

/// Identifier for one benchmark, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `name` with parameter `param` (rendered `name/param`).
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: Some(param.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.param {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name, param: None }
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to warm up before timing.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(&id.label());
        self
    }

    /// Runs a benchmark closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b, input);
        b.report(&id.label());
        self
    }

    /// Ends the group. (Consumes nothing in this stand-in; kept for API parity.)
    pub fn finish(&mut self) {}
}

/// Times closures passed to [`Bencher::iter`].
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    mean: Option<Duration>,
    iters: u64,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher {
            sample_size,
            warm_up_time,
            measurement_time,
            mean: None,
            iters: 0,
        }
    }

    /// Calls `routine` repeatedly: first until the warm-up budget elapses,
    /// then for `sample_size` timed batches within the measurement budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed until the budget is spent (at least once).
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Size batches so a sample takes roughly measurement_time / samples.
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
            if total >= self.measurement_time.saturating_mul(2) {
                break;
            }
        }
        self.mean = Some(total / iters.max(1) as u32);
        self.iters = iters;
    }

    fn report(&self, label: &str) {
        match self.mean {
            Some(mean) => println!("  {label}: {mean:?} / iter ({} iters)", self.iters),
            None => println!("  {label}: no measurement (iter was never called)"),
        }
    }
}

/// Registers benchmark functions under a group name, mirroring criterion's
/// `criterion_group!(name, fn, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(2);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(2));
        let mut count = 0u64;
        g.bench_function("spin", |b| b.iter(|| count = count.wrapping_add(1)));
        g.bench_with_input(BenchmarkId::new("with_input", 8), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(count > 0);
    }
}
