//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a dependency-light replacement that keeps the subset of the serde
//! surface the Bootes crates use: the [`Serialize`] / [`Deserialize`] traits,
//! `#[derive(Serialize, Deserialize)]` for named-field structs and enums, and
//! impls for the standard types that appear in Bootes data structures.
//!
//! Instead of serde's visitor-based data model, everything serializes through
//! an owned [`Value`] tree (the same idea as `serde_json::Value`). The
//! companion `serde_json` stub renders and parses that tree as JSON text.
//! Formats match serde's JSON conventions where the workspace relies on them:
//! externally-tagged enums, `Duration` as `{"secs", "nanos"}`, `Option` as
//! the value or `null`.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, format-independent serialization tree (JSON-shaped).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or signed integer.
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array of values.
    Array(Vec<Value>),
    /// Ordered key-value map (preserves field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the array elements if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string if this value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) if *u <= i64::MAX as u64 => Some(*u as i64),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a serialization tree.
    fn serialize(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a serialization tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape does not match `Self`.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let raw = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.2e18 => f as i64,
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    // serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        T::deserialize(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::custom("expected array"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom("tuple length mismatch"));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<V: Serialize, S> Serialize for std::collections::HashMap<String, V, S> {
    fn serialize(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Serialize for std::time::Duration {
    fn serialize(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let secs = u64::deserialize(
            v.get("secs")
                .ok_or_else(|| Error::custom("missing field secs"))?,
        )?;
        let nanos = u32::deserialize(
            v.get("nanos")
                .ok_or_else(|| Error::custom("missing field nanos"))?,
        )?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_roundtrip() {
        let d = std::time::Duration::new(12, 345_678_901);
        let v = d.serialize();
        assert_eq!(std::time::Duration::deserialize(&v).unwrap(), d);
    }

    #[test]
    fn option_and_vec_roundtrip() {
        let x: Option<Vec<u64>> = Some(vec![1, 2, 3]);
        let v = x.serialize();
        assert_eq!(<Option<Vec<u64>>>::deserialize(&v).unwrap(), x);
        let n: Option<u64> = None;
        assert_eq!(<Option<u64>>::deserialize(&n.serialize()).unwrap(), None);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(u64::deserialize(&Value::Int(7)).unwrap(), 7);
        assert_eq!(i64::deserialize(&Value::UInt(7)).unwrap(), 7);
        assert_eq!(f64::deserialize(&Value::Int(-2)).unwrap(), -2.0);
        assert!(u32::deserialize(&Value::UInt(u64::MAX)).is_err());
    }
}
