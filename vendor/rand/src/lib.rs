//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset the Bootes workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], [`RngExt::random_range`] /
//! [`RngExt::random`], and [`seq::SliceRandom::shuffle`]. The generator is
//! deterministic (xoshiro256** seeded through SplitMix64), which is all the
//! workspace needs — every call site seeds explicitly for reproducibility.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Samples uniformly from `range` (which must be non-empty).
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`f64` in `[0, 1)`, integers over their full range, `bool` fair).
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Types that can be drawn uniformly from a half-open `Range`.
pub trait SampleRange: Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased sampling of an integer in `[0, bound)` via Lemire-style
/// rejection on the widening multiply.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let x = rng.next_u64();
        let wide = (x as u128) * (bound as u128);
        if (wide as u64) >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = (range.end - range.start) as u64;
                range.start + uniform_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8);

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from an empty range");
        let unit = f64::sample_standard(rng);
        range.start + unit * (range.end - range.start)
    }
}

/// Types with a standard distribution for [`RngExt::random`].
pub trait Standard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits give a uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, RngExt};

    /// Slice shuffling, as in `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000usize), b.random_range(0..1000usize));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(3..17usize);
            assert!((3..17).contains(&x));
            let f = rng.random::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        let mut rng = StdRng::seed_from_u64(9);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle with this seed should move elements");
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }
}
