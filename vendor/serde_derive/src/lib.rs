//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` stub without `syn`/`quote`: the input token stream is
//! parsed by hand into a small AST (named-field structs; enums with unit,
//! tuple, and struct variants), and the impls are emitted as source text.
//! Generics are not supported. The only `#[serde(...)]` attribute honored
//! is field-level `#[serde(default)]` on named fields: a missing key
//! deserializes to `Default::default()` instead of erroring, so record
//! formats can grow fields without invalidating already-written files.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct` or `enum` item.
enum Item {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// A named field and whether it carries `#[serde(default)]`.
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Derives `serde::Serialize` by converting the item into a `serde::Value`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` by reconstructing the item from a
/// `serde::Value`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated code parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (#[...]) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct or enum, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!("derive stub does not support generics on {name}"));
        }
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "derive stub supports only braced {kind} bodies for {name}, got {other:?}"
            ))
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct {
            name,
            fields: parse_named_fields(body)?,
        }),
        "enum" => Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        }),
        other => Err(format!("cannot derive for {other} {name}")),
    }
}

/// Parses `name: Type, ...` out of a struct or struct-variant body,
/// honoring a preceding field-level `#[serde(default)]` attribute.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name, noting
        // whether any attribute is `#[serde(default)]`.
        let mut default = false;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        default |= is_serde_default(g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(field) = tok else {
            return Err(format!("expected field name, got {tok:?}"));
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected ':' after field {field}, got {other:?}")),
        }
        fields.push(Field {
            name: field.to_string(),
            default,
        });
        // Skip the type: consume until a ',' at zero angle-bracket depth.
        let mut angle_depth = 0i32;
        for tok in tokens.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Whether an attribute body (the stream inside `#[...]`) is
/// `serde(default)` — the one serde attribute the stub understands.
fn is_serde_default(stream: TokenStream) -> bool {
    let mut tokens = stream.into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default")),
        _ => false,
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        while let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '#' {
                tokens.next();
                tokens.next();
            } else {
                break;
            }
        }
        let Some(tok) = tokens.next() else { break };
        let TokenTree::Ident(name) = tok else {
            return Err(format!("expected variant name, got {tok:?}"));
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                tokens.next();
                VariantShape::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantShape::Struct(fields)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
        // Skip an optional discriminant, then the ',' separator.
        for tok in tokens.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

/// Counts comma-separated entries at angle-depth zero (tuple-variant arity).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!("(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => {
                            format!("{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),")
                        }
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::serialize(f0))]),"
                        ),
                        VariantShape::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: String = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b}),"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Array(vec![{elems}]))]),",
                                binders.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let entries: String = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         ::serde::Serialize::serialize({f})),"
                                    )
                                })
                                .collect();
                            let binders: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),",
                                binders.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// One `field: <expr>,` initializer for a struct (or struct-variant)
/// deserialize body: `#[serde(default)]` fields fall back to
/// `Default::default()` when the key is absent, everything else errors.
fn field_init(field: &str, default: bool, scope: &str, source: &str) -> String {
    if default {
        format!(
            "{field}: match {source}.get(\"{field}\") {{\n\
                 Some(__f) => ::serde::Deserialize::deserialize(__f)?,\n\
                 None => ::std::default::Default::default(),\n\
             }},"
        )
    } else {
        format!(
            "{field}: ::serde::Deserialize::deserialize({source}.get(\"{field}\")\
             .ok_or_else(|| ::serde::Error::custom(\
             \"missing field {field} in {scope}\"))?)?,"
        )
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| field_init(&f.name, f.default, name, "__v"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if __v.as_object().is_none() {{\n\
                             return Err(::serde::Error::custom(\"expected object for {name}\"));\n\
                         }}\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => None,
                        VariantShape::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(\
                             ::serde::Deserialize::deserialize(__inner)?)),"
                        )),
                        VariantShape::Tuple(n) => {
                            let elems: String = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&__items[{i}])?,")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let __items = __inner.as_array().ok_or_else(|| \
                                         ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                                     if __items.len() != {n} {{\n\
                                         return Err(::serde::Error::custom(\
                                             \"wrong arity for {name}::{vn}\"));\n\
                                     }}\n\
                                     Ok({name}::{vn}({elems}))\n\
                                 }}"
                            ))
                        }
                        VariantShape::Struct(fields) => {
                            let scope = format!("{name}::{vn}");
                            let inits: String = fields
                                .iter()
                                .map(|f| field_init(&f.name, f.default, &scope, "__inner"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => Ok({name}::{vn} {{ {inits} }}),"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\n\
                                 __other => Err(::serde::Error::custom(format!(\
                                     \"unknown variant {{__other}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__m[0];\n\
                                 match __tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     __other => Err(::serde::Error::custom(format!(\
                                         \"unknown variant {{__other}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::custom(\"expected enum value for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
