//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the Bootes test suite uses: the [`Strategy`] trait
//! with `prop_map` / `prop_flat_map` adapters, range and tuple strategies,
//! [`collection::vec`], the `proptest!` macro with an optional
//! `#![proptest_config(...)]` header, and `prop_assert!` / `prop_assert_eq!`
//! / `prop_assume!`.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each case is drawn from a deterministic generator seeded by the test
//! name, so failures reproduce run-to-run.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test generator: seeds from a hash of the test name so
/// every run of a given test sees the same case sequence.
pub fn test_rng(name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Uses each generated value to build a follow-on strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy adapter produced by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}

/// Allowed element counts for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Strategy for `Vec`s of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.random_range(self.size.min..self.size.max + 1)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Skips the current case when `cond` is false (counts as rejected, not
/// failed). Only valid inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(());
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Declares `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports an optional `#![proptest_config(expr)]` header followed by any
/// number of `fn name(pat in strategy, ...) { body }` items, each with
/// optional doc comments / attributes (including `#[test]`, which is
/// absorbed — the macro emits its own).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::test_rng(stringify!($name));
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                let __max_attempts = __cfg.cases.saturating_mul(20).max(20);
                while __accepted < __cfg.cases && __attempts < __max_attempts {
                    __attempts += 1;
                    $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ()> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if __outcome.is_ok() {
                        __accepted += 1;
                    }
                }
                assert!(
                    __accepted > 0,
                    "proptest: every generated case was rejected by prop_assume!"
                );
            }
        )*
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::test_rng("strategies_sample_in_bounds");
        let s = (1usize..10, -1.0f64..1.0).prop_map(|(n, x)| (n * 2, x));
        for _ in 0..200 {
            let (n, x) = crate::Strategy::sample(&s, &mut rng);
            assert!((2..20).contains(&n) && n % 2 == 0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn vec_sizes_respected() {
        let mut rng = crate::test_rng("vec_sizes_respected");
        let exact = collection::vec(0usize..5, 16);
        let ranged = collection::vec(0usize..5, 2..7);
        for _ in 0..100 {
            assert_eq!(crate::Strategy::sample(&exact, &mut rng).len(), 16);
            let v = crate::Strategy::sample(&ranged, &mut rng);
            assert!((2..7).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires patterns, assume, and asserts together.
        #[test]
        fn macro_end_to_end((a, b) in (0usize..50, 0usize..50), v in collection::vec(0u64..9, 1..8)) {
            prop_assume!(a != b);
            prop_assert!(a < 50 && b < 50);
            prop_assert_ne!(a, b);
            prop_assert_eq!(v.len(), v.iter().filter(|&&x| x < 9).count());
        }
    }
}
